"""The ``Assessment`` façade: one front door for the whole pipeline.

Every workflow used to hand-wire the same chain — build the inventory,
simulate and measure the workload, pick an intensity, evaluate the
active+embodied model, assemble the report — from five subpackages.
:class:`Assessment` owns that chain.  It is configured declaratively
(:meth:`Assessment.from_spec`) or fluently (the ``with_*`` builders, each
returning a new assessment), resolves every pluggable component through the
:mod:`repro.api.registry`, and runs against a shared
:class:`~repro.api.substrates.SubstrateCache` so repeated runs never repeat
the expensive simulation::

    from repro.api import Assessment, default_spec

    result = Assessment.from_spec(default_spec(node_scale=0.05)).run()
    print(result.total_kg)

    cheap_grid = (Assessment.from_spec(default_spec(node_scale=0.05))
                  .with_grid(50.0).with_pue(1.1).run())

The default spec reproduces the historical ``SnapshotExperiment`` +
``evaluate_model`` path exactly (same configuration, same seeds, same
floating-point operations).
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.core.embodied import EmbodiedAsset
from repro.core.model import CarbonModel, SnapshotInputs
from repro.units.quantities import CarbonIntensity

from repro.api.registry import (
    AMORTIZATION_POLICIES,
    EMBODIED_ESTIMATORS,
    GRID_PROVIDERS,
    INVENTORY_SOURCES,
)
from repro.api.result import AssessmentResult
from repro.api.spec import CATALOG_ESTIMATOR, AssessmentSpec, default_spec
from repro.api.substrates import SubstrateCache, shared_substrates

IntensityLike = Union[str, float, int, CarbonIntensity]

#: Sentinel distinguishing "not passed" from an explicit ``None`` (= clear).
_UNSET = object()


def _coerce_catalog(catalog):
    """Normalise a ``catalog=`` argument to a CatalogRecorder (or None).

    The import is deferred: :mod:`repro.catalog` imports the API layer,
    so a module-level import here would be circular — and the common
    no-catalog path should not pay for loading the catalog machinery.
    """
    if catalog is None:
        return None
    from repro.catalog.record import CatalogRecorder

    return CatalogRecorder.coerce(catalog)


def resolve_spec_components(spec: AssessmentSpec):
    """Resolve every registry name a spec will need, loudly and early.

    A typo'd component must fail in milliseconds, not after a full
    simulation.  Shared by :meth:`Assessment.run` and the portfolio
    runner's pre-pass, so the resolution rules (including the
    ``per_server_kgco2`` / catalog-estimator special case and the
    grid-only-when-unpinned rule) live in one place.  Returns the
    amortisation-policy factory — the one resolution callers reuse.
    """
    policy_factory = AMORTIZATION_POLICIES.get(spec.amortization)
    if spec.per_server_kgco2 is None and spec.embodied_estimator != CATALOG_ESTIMATOR:
        EMBODIED_ESTIMATORS.get(spec.embodied_estimator)
    INVENTORY_SOURCES.get(spec.inventory)
    if spec.carbon_intensity_g_per_kwh is None:
        GRID_PROVIDERS.get(spec.grid)
    return policy_factory


class Assessment:
    """A configured assessment, ready to run.

    Parameters
    ----------
    spec:
        The declarative configuration; defaults to the paper's full-scale
        snapshot (:func:`~repro.api.spec.default_spec`).
    substrates:
        The substrate cache to run against; defaults to the process-wide
        shared cache, so independent assessments of the same physical
        configuration reuse one simulation.
    catalog:
        Opt-in run cataloguing: a :class:`~repro.catalog.RunCatalog`, a
        :class:`~repro.catalog.CatalogRecorder` (to control tags and
        serve/record policy), or just a database path.  :meth:`run` then
        records its result — and a repeat of an already-catalogued spec
        is *served* from the catalog with zero simulation, bit-identical
        to the recorded run.
    """

    def __init__(
        self,
        spec: Optional[AssessmentSpec] = None,
        *,
        substrates: Optional[SubstrateCache] = None,
        catalog=None,
    ):
        self._spec = spec or default_spec()
        self._substrates = substrates if substrates is not None else shared_substrates()
        self._recorder = _coerce_catalog(catalog)

    @classmethod
    def from_spec(
        cls,
        spec: AssessmentSpec,
        *,
        substrates: Optional[SubstrateCache] = None,
        catalog=None,
    ) -> "Assessment":
        """An assessment for the given spec."""
        return cls(spec, substrates=substrates, catalog=catalog)

    @property
    def spec(self) -> AssessmentSpec:
        return self._spec

    @property
    def substrates(self) -> SubstrateCache:
        return self._substrates

    # -- fluent builders (each returns a new Assessment) ---------------------------

    def _replace(self, **changes) -> "Assessment":
        return Assessment(self._spec.replace(**changes),
                          substrates=self._substrates, catalog=self._recorder)

    def with_grid(self, grid: IntensityLike) -> "Assessment":
        """Set the grid intensity: a registered provider name or a fixed value.

        A string selects a registered grid provider (whose Medium reference
        intensity prices the active term); a number or
        :class:`~repro.units.quantities.CarbonIntensity` fixes the intensity
        directly.
        """
        if isinstance(grid, str):
            return self._replace(grid=grid, carbon_intensity_g_per_kwh=None)
        if isinstance(grid, CarbonIntensity):
            return self._replace(carbon_intensity_g_per_kwh=grid.g_per_kwh)
        return self._replace(carbon_intensity_g_per_kwh=float(grid))

    def with_pue(self, pue: float) -> "Assessment":
        """Set the facility PUE."""
        return self._replace(pue=float(pue))

    def with_embodied(
        self,
        estimator: Optional[str] = None,
        *,
        per_server_kgco2=_UNSET,
        lifetime_years: Optional[float] = None,
    ) -> "Assessment":
        """Configure the embodied term: estimator, uniform override, lifetime.

        Pass ``per_server_kgco2=None`` explicitly to clear a previous
        uniform override.
        """
        changes = {}
        if estimator is not None:
            changes["embodied_estimator"] = estimator
        if per_server_kgco2 is not _UNSET:
            changes["per_server_kgco2"] = per_server_kgco2
        if lifetime_years is not None:
            changes["lifetime_years"] = float(lifetime_years)
        return self._replace(**changes)

    def with_amortization(self, policy: str) -> "Assessment":
        """Set the registered amortisation policy."""
        return self._replace(amortization=policy)

    def with_inventory(self, inventory: str) -> "Assessment":
        """Set the registered inventory source."""
        return self._replace(inventory=inventory)

    def scaled(self, node_scale: float) -> "Assessment":
        """Shrink the fleet proportionally (minimum two nodes per site)."""
        return self._replace(node_scale=float(node_scale))

    # -- running ---------------------------------------------------------------------

    def resolved_intensity_g_per_kwh(self) -> float:
        """The intensity the active term will use, resolving the grid provider."""
        if self._spec.carbon_intensity_g_per_kwh is not None:
            return self._spec.carbon_intensity_g_per_kwh
        series = self._substrates.intensity_series(self._spec.grid)
        return series.reference_values()["medium"].g_per_kwh

    def run(self) -> AssessmentResult:
        """Run the full pipeline and return the unified result.

        With ``catalog=`` configured, a previously catalogued run of this
        exact spec is served straight from the catalog (zero simulation,
        as a :class:`~repro.catalog.ServedAssessmentResult`); otherwise
        the live pipeline runs and its result is recorded.
        """
        if self._recorder is not None:
            return self._recorder.run_assessment(self)
        return self.run_live()

    def run_live(self) -> AssessmentResult:
        """Run the live pipeline unconditionally (never catalog-served)."""
        spec = self._spec
        policy_factory = resolve_spec_components(spec)
        intensity = self.resolved_intensity_g_per_kwh()
        snapshot = self._substrates.snapshot(spec)
        assets = self._assets(snapshot, spec)
        policy = policy_factory()
        model = CarbonModel(
            carbon_intensity=CarbonIntensity(intensity),
            pue=spec.pue,
            amortization=policy,
        )
        total = model.evaluate(
            SnapshotInputs(energy=snapshot.active_energy_input(), assets=assets)
        )
        return AssessmentResult(
            spec=spec.replace(carbon_intensity_g_per_kwh=intensity),
            snapshot=snapshot,
            total=total,
        )

    # -- embodied asset assembly ------------------------------------------------------

    def embodied_assets(self) -> List[EmbodiedAsset]:
        """The resolved embodied-asset list for this spec.

        Resolves the spec's estimator / uniform override against the
        (cached) snapshot exactly as :meth:`run` does — the public seam the
        uncertainty engine contracts its embodied columns against.
        """
        return self._assets(self._substrates.snapshot(self._spec), self._spec)

    def _assets(self, snapshot, spec: AssessmentSpec) -> List[EmbodiedAsset]:
        if spec.per_server_kgco2 is not None or spec.embodied_estimator == CATALOG_ESTIMATOR:
            # The engine's native path (catalog datasheet figures, or the
            # uniform Table 4 override) — bit-identical to the historical
            # SnapshotExperiment pipeline.
            return snapshot.embodied_assets(spec.per_server_kgco2, spec.lifetime_years)
        estimator = EMBODIED_ESTIMATORS.create(spec.embodied_estimator)
        catalog = self._substrates.catalog()
        per_model: dict = {}

        def node_kgco2(model_name: str) -> float:
            kg = per_model.get(model_name)
            if kg is None:
                kg = float(estimator.node_total_kgco2(catalog.node(model_name)))
                per_model[model_name] = kg
            return kg

        return snapshot.embodied_assets(
            lifetime_years=spec.lifetime_years, node_kgco2_resolver=node_kgco2)


__all__ = ["Assessment", "resolve_spec_components"]
