"""The unified assessment pipeline API.

This package is the canonical way to run any assessment.  It provides:

* :class:`~repro.api.spec.AssessmentSpec` — a declarative, JSON round-
  trippable description of a run (inventory source, grid provider,
  embodied estimator, amortisation policy, scenario parameters);
* the component **registries** (:mod:`repro.api.registry`) under which the
  stock implementations are registered by name and new backends plug in
  without touching core code;
* :class:`~repro.api.assessment.Assessment` — the façade that runs one
  spec (or is configured fluently with ``with_*`` builders) and returns an
  :class:`~repro.api.result.AssessmentResult` wrapping the snapshot, the
  carbon model evaluation, the scenario grids and the report;
* :class:`~repro.api.batch.BatchAssessmentRunner` — parameter-grid sweeps
  over a shared :class:`~repro.api.substrates.SubstrateCache`, so N
  scenarios cost one simulation instead of N.

Quick start::

    from repro.api import Assessment, BatchAssessmentRunner, default_spec

    result = Assessment.from_spec(default_spec(node_scale=0.05)).run()
    print(result.total_kg)

    batch = BatchAssessmentRunner(default_spec(node_scale=0.05)).sweep(
        intensity=[50.0, 175.0, 300.0], pue=[1.1, 1.3], lifetime=[3.0, 5.0])
    print(batch.min_total_kg, batch.max_total_kg)
"""

from repro.api.registry import (
    AMORTIZATION_POLICIES,
    BASELINE_ESTIMATORS,
    ComponentRegistry,
    DuplicateComponentError,
    EMBODIED_ESTIMATORS,
    GRID_PROVIDERS,
    INVENTORY_SOURCES,
    TRACE_PROVIDERS,
    UnknownComponentError,
    register_amortization_policy,
    register_baseline_estimator,
    register_embodied_estimator,
    register_grid_provider,
    register_inventory_source,
    register_trace_provider,
)
from repro.api.spec import (
    CATALOG_ESTIMATOR,
    COLUMNAR_SWEEP_FIELDS,
    AssessmentSpec,
    default_spec,
)
from repro.api.substrates import (
    DEFAULT_SHARED_MAX_ENTRIES,
    SubstrateCache,
    shared_substrates,
)
from repro.api.result import AssessmentResult
from repro.api.assessment import Assessment
from repro.api.columnar import SweepPlan, columnar_eligible, compile_sweep
from repro.api.batch import (
    BATCH_ENGINES,
    BatchAssessmentRunner,
    BatchResult,
    SWEEP_AXES,
    TemporalBatchResult,
)
from repro.api.temporal import TemporalAssessment, TemporalAssessmentResult
from repro.api.scenarios import active_scenario_rows, embodied_scenario_rows

# Register the stock components under their well-known names (import for
# side effect; must come after the registries exist).
from repro.api import defaults as _defaults  # noqa: E402,F401
from repro.api.defaults import register_iris_variant

__all__ = [
    # spec
    "AssessmentSpec",
    "default_spec",
    "CATALOG_ESTIMATOR",
    # façade and results
    "Assessment",
    "AssessmentResult",
    "BatchAssessmentRunner",
    "BatchResult",
    "TemporalBatchResult",
    "TemporalAssessment",
    "TemporalAssessmentResult",
    "SWEEP_AXES",
    "BATCH_ENGINES",
    # sweep compiler
    "COLUMNAR_SWEEP_FIELDS",
    "SweepPlan",
    "columnar_eligible",
    "compile_sweep",
    # substrates
    "DEFAULT_SHARED_MAX_ENTRIES",
    "SubstrateCache",
    "shared_substrates",
    # scenario helpers
    "active_scenario_rows",
    "embodied_scenario_rows",
    # registries
    "ComponentRegistry",
    "UnknownComponentError",
    "DuplicateComponentError",
    "GRID_PROVIDERS",
    "EMBODIED_ESTIMATORS",
    "INVENTORY_SOURCES",
    "AMORTIZATION_POLICIES",
    "BASELINE_ESTIMATORS",
    "TRACE_PROVIDERS",
    "register_grid_provider",
    "register_embodied_estimator",
    "register_inventory_source",
    "register_amortization_policy",
    "register_baseline_estimator",
    "register_trace_provider",
    "register_iris_variant",
]
