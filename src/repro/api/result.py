"""The unified result object an assessment run produces.

:class:`AssessmentResult` wraps everything the pipeline produced for one
spec — the simulated snapshot (Table 2), the evaluated carbon model
(equation 1), and lazy views of the scenario grids (Tables 3 and 4) and the
rendered audit report — behind one object, so callers stop reaching into
five subpackages to assemble their outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.core.results import TotalCarbonResult
from repro.io.jsonio import PathLike, write_json
from repro.reporting.report import AuditReport
from repro.snapshot.experiment import SnapshotResult
from repro.units.quantities import Carbon

from repro.api.spec import AssessmentSpec


@dataclass(frozen=True)
class AssessmentResult:
    """Everything one assessment produced.

    Attributes
    ----------
    spec:
        The spec that was run (with the intensity actually used resolved
        into ``carbon_intensity_g_per_kwh``).
    snapshot:
        The simulated measurement campaign (per-site energies, Table 2).
    total:
        The evaluated carbon model: active + embodied = total (equation 1).
    """

    spec: AssessmentSpec
    snapshot: SnapshotResult
    total: TotalCarbonResult

    # -- headline numbers ---------------------------------------------------------

    @property
    def total_kg(self) -> float:
        return self.total.total_kg

    @property
    def active_kg(self) -> float:
        return self.total.active.total_kg

    @property
    def embodied_kg(self) -> float:
        return self.total.embodied.total_kg

    @property
    def embodied_fraction(self) -> float:
        return self.total.embodied_fraction

    @property
    def energy_kwh(self) -> float:
        """The snapshot's total best-estimate IT energy."""
        return self.snapshot.total_best_estimate_kwh

    # -- tables --------------------------------------------------------------------

    def table2_rows(self) -> List[Dict[str, object]]:
        """Per-site energy by measurement method (the paper's Table 2)."""
        return self.snapshot.table2_rows()

    def table3_rows(self) -> List[Dict[str, object]]:
        """The active-carbon scenario grid for this snapshot's energy."""
        return self.snapshot.table3_rows()

    def table4_rows(self) -> List[Dict[str, float]]:
        """The embodied scenario grid for this snapshot's fleet size."""
        return self.snapshot.table4_rows(self.spec.duration_hours / 24.0)

    def summary(self) -> Dict[str, object]:
        """One flat row of the scenario parameters and headline results."""
        return {
            "inventory": self.spec.inventory,
            "node_scale": self.spec.node_scale,
            "nodes": self.snapshot.total_nodes,
            "energy_kwh": self.energy_kwh,
            "intensity_g_per_kwh": self.spec.carbon_intensity_g_per_kwh,
            "pue": self.spec.pue,
            "lifetime_years": self.spec.lifetime_years,
            "amortization": self.spec.amortization,
            "active_kg": self.active_kg,
            "embodied_kg": self.embodied_kg,
            "total_kg": self.total_kg,
            "embodied_fraction": self.embodied_fraction,
        }

    def as_dict(self) -> Dict[str, Any]:
        """The result as a JSON-serialisable dictionary."""
        return {
            "spec": self.spec.to_dict(),
            "summary": self.summary(),
            "table2": self.table2_rows(),
            "breakdown_kg": self.total.breakdown_kg(),
        }

    def to_json(self, path: PathLike) -> None:
        """Write :meth:`as_dict` to ``path`` as JSON."""
        write_json(path, self.as_dict())

    # -- report ---------------------------------------------------------------------

    def report(self, title: str = "Infrastructure carbon assessment") -> AuditReport:
        """The assembled audit report for this run."""
        audit = AuditReport(title=title)
        audit.add_table(
            "Active energy by measurement method (kWh)", self.table2_rows())
        audit.add_total_result(
            "Carbon model (intensity "
            f"{self.spec.carbon_intensity_g_per_kwh:.0f} gCO2e/kWh, "
            f"PUE {self.spec.pue})",
            self.total,
        )
        audit.add_equivalences("In everyday terms", Carbon.from_kg(self.total_kg))
        return audit


__all__ = ["AssessmentResult"]
