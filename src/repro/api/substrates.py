"""Shared, cached simulation substrates.

The expensive parts of an assessment — the hardware catalog, a grid
carbon-intensity series, and above all the simulated measurement campaign
(workload generation, scheduling, power conversion, instrument sweep) — do
not depend on the scenario parameters being evaluated.  A
:class:`SubstrateCache` computes each of them once per distinct
configuration and hands the cached object to every assessment that shares
it, which is what makes a :class:`~repro.api.batch.BatchAssessmentRunner`
sweep of N scenarios cost one simulation instead of N.

The cache is thread-safe: concurrent requests for the *same* key block on
one in-flight computation (no duplicated engine runs), while requests for
different keys proceed independently.

With ``persist_dir`` set, simulated snapshots are additionally written to
disk (``.npz`` + JSON sidecar keyed by the spec's physical hash, see
:mod:`repro.api.persistence`), so a full-scale simulation is paid once per
machine rather than once per process; ``jobs`` controls how many sites each
simulation runs concurrently.
"""

from __future__ import annotations

import threading
import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple, Union

from repro.grid.intensity import CarbonIntensitySeries
from repro.inventory.catalog import HardwareCatalog, default_catalog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.spec import AssessmentSpec
    from repro.snapshot.experiment import SnapshotResult


class _Slot:
    """One cache entry being computed or already computed."""

    __slots__ = ("event", "value", "error")

    def __init__(self):
        self.event = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None


def _waiter_error(error: BaseException) -> BaseException:
    """A fresh exception object for one waiter thread.

    Waiters must not re-raise the owner's exception *object*: raising
    mutates ``__traceback__``, and N waiters raising the one shared
    instance concurrently corrupt each other's tracebacks (and the
    owner's).  Each waiter gets its own instance — same type and args
    where the type allows reconstruction, a ``RuntimeError`` wrapper
    otherwise — explicitly chained to the owner's original so the real
    failure (with the owner's traceback) stays visible.
    """
    try:
        clone = type(error)(*error.args)
    except Exception:
        clone = RuntimeError(f"shared substrate computation failed: {error!r}")
    clone.__cause__ = error
    return clone


class SubstrateCache:
    """Caches the expensive substrates shared across assessment runs.

    Parameters
    ----------
    persist_dir:
        Directory for the on-disk snapshot cache; ``None`` (default) keeps
        the cache in-process only.  Entries are keyed by the spec's
        physical hash, written atomically, and unreadable/stale entries are
        recomputed rather than raised.
    jobs:
        How many sites each simulated snapshot runs concurrently
        (:meth:`SnapshotExperiment.run`'s ``max_workers``); ``None`` picks
        one thread per site capped at the CPU count.
    max_entries:
        Optional cap on retained cache entries.  A long-lived process
        sweeping many distinct physical configurations otherwise retains
        every substrate forever; with a cap, inserting past it evicts the
        oldest *completed* entries (in-flight computations are never
        evicted — a waiter blocked on one must always be woken by its
        owner).  ``None`` (default) keeps the historical unbounded
        behaviour.
    """

    def __init__(self, persist_dir: Optional[Union[str, Path]] = None,
                 jobs: Optional[int] = 1,
                 max_entries: Optional[int] = None):
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be at least 1 (or None)")
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be at least 1 (or None)")
        self._lock = threading.Lock()
        self._slots: Dict[Tuple[str, Tuple[Any, ...]], _Slot] = {}
        self._persist_dir = (Path(persist_dir).expanduser()
                             if persist_dir is not None else None)
        self._jobs = jobs
        self._max_entries = max_entries
        # Statistics, mainly so tests and benchmarks can assert reuse.
        self.snapshot_runs = 0
        self.snapshot_hits = 0
        self.snapshot_loads = 0

    @property
    def persist_dir(self) -> Optional[Path]:
        """Where snapshots persist across processes (``None`` = in-memory only)."""
        return self._persist_dir

    # -- generic compute-once machinery ------------------------------------------

    def _evict_overflow_locked(self) -> None:
        """Drop the oldest completed entries while over ``max_entries``.

        Caller holds the lock.  Dict insertion order makes "oldest" the
        earliest-created surviving entry; entries still being computed
        (event not set) are skipped unconditionally, so a waiter blocked
        on a slot can always be woken by that slot's owner — even if that
        means temporarily exceeding the cap.  The ``catalog`` slot is
        never evicted: every snapshot consults it, so evicting it only
        trades one dict entry for a rebuild on the next simulation.
        """
        if self._max_entries is None or len(self._slots) <= self._max_entries:
            return
        evictable = [key for key, slot in self._slots.items()
                     if slot.event.is_set() and key[0] != "catalog"]
        excess = len(self._slots) - self._max_entries
        for key in evictable[:excess]:
            del self._slots[key]

    def clear(self) -> int:
        """Drop every completed cache entry; returns how many were dropped.

        In-flight computations are kept (their waiters must be woken by
        their owners); they complete normally and are retained until a
        later :meth:`clear` or eviction.  The persistent on-disk snapshot
        cache is untouched — ``clear`` frees process memory, not disk.
        """
        with self._lock:
            completed = [key for key, slot in self._slots.items()
                         if slot.event.is_set()]
            for key in completed:
                del self._slots[key]
            return len(completed)

    def _compute_once(self, kind: str, key: Tuple[Any, ...],
                      compute: Callable[[], Any]) -> Any:
        with self._lock:
            slot = self._slots.get((kind, key))
            owner = slot is None
            if owner:
                slot = self._slots[(kind, key)] = _Slot()
                self._evict_overflow_locked()
            elif kind == "snapshot":
                self.snapshot_hits += 1
        if owner:
            try:
                slot.value = compute()
            except BaseException as exc:
                slot.error = exc
                # A failed computation must not poison the key forever.
                with self._lock:
                    self._slots.pop((kind, key), None)
                slot.event.set()
                raise
            slot.event.set()
            return slot.value
        slot.event.wait()
        if slot.error is not None:
            # Never re-raise the owner's exception object (see _waiter_error).
            raise _waiter_error(slot.error)
        return slot.value

    # -- substrates -----------------------------------------------------------------

    def catalog(self) -> HardwareCatalog:
        """The (immutable) default hardware catalog, built once.

        Routed through the per-key compute-once machinery rather than
        built under the cache-wide lock: a slow catalog build must never
        stall concurrent :meth:`intensity_series`/:meth:`snapshot`
        requests for unrelated keys (they only touch the lock for the
        brief slot bookkeeping, never for the build itself).  The
        ``catalog`` slot is exempt from ``max_entries`` eviction — it is
        the one substrate every snapshot needs.
        """
        return self._compute_once("catalog", (), default_catalog)

    def intensity_series(self, grid: str, days: float = 30.0) -> CarbonIntensitySeries:
        """The named grid provider's intensity series, computed once.

        The resolved factory is part of the cache key, so re-registering a
        provider name (``overwrite=True``) is picked up instead of serving
        the replaced provider's stale series.
        """
        from repro.api.registry import GRID_PROVIDERS

        factory = GRID_PROVIDERS.get(grid)
        return self._compute_once(
            "intensity", (grid, days, factory),
            lambda: factory(days=days),
        )

    def snapshot(self, spec: "AssessmentSpec") -> "SnapshotResult":
        """The simulated snapshot for the spec's physical configuration.

        Keyed by :meth:`AssessmentSpec.physical_key` plus the resolved
        inventory-source factory, so specs differing only in scenario
        parameters share one engine run while a re-registered inventory
        source (``overwrite=True``) is not served stale results.

        With ``persist_dir`` configured, the on-disk cache is consulted
        before simulating, and fresh simulations are written back.
        """
        from repro.api.registry import INVENTORY_SOURCES
        from repro.snapshot.experiment import SnapshotExperiment

        factory = INVENTORY_SOURCES.get(spec.inventory)

        def _run() -> "SnapshotResult":
            digest = None
            if self._persist_dir is not None:
                from repro.api.persistence import (
                    load_snapshot_result, snapshot_digest)

                digest = snapshot_digest(spec.physical_key(), factory)
                cached = load_snapshot_result(self._persist_dir, digest)
                if cached is not None:
                    with self._lock:
                        self.snapshot_loads += 1
                    return cached
            config = factory(spec)
            engine_kwargs: Dict[str, Any] = {}
            if spec.engine != "columnar":
                engine_kwargs["engine"] = spec.engine
            if spec.scheduler_engine != "indexed":
                engine_kwargs["scheduler_engine"] = spec.scheduler_engine
            if spec.engine == "sharded":
                engine_kwargs["shard_nodes"] = spec.shard_nodes
                engine_kwargs["shard_dtype"] = spec.shard_dtype
                if digest is not None:
                    # Shard stores live next to the snapshot cache, keyed
                    # by the same physical digest, so a re-simulation of
                    # the same physical configuration reuses its shards.
                    engine_kwargs["shard_dir"] = (
                        self._persist_dir / "shards" / digest)
                    engine_kwargs["shard_key"] = digest
            result = SnapshotExperiment(
                config, catalog=self.catalog(), max_workers=self._jobs,
                **engine_kwargs).run()
            with self._lock:
                self.snapshot_runs += 1
            if digest is not None:
                from repro.api.persistence import save_snapshot_result

                try:
                    save_snapshot_result(self._persist_dir, digest, result)
                except OSError as exc:
                    # A cache problem must never cost the caller the result
                    # of a simulation that already succeeded.
                    warnings.warn(
                        f"could not persist snapshot to {self._persist_dir}: "
                        f"{exc}", RuntimeWarning, stacklevel=2)
            return result

        return self._compute_once("snapshot", spec.physical_key() + (factory,), _run)


#: Entry cap of the process-wide shared cache.  A long-lived process (the
#: serving layer above all) funnels every request that does not bring its
#: own cache through :func:`shared_substrates`; unbounded, a sweep over
#: distinct physical configurations would retain every substrate forever.
#: Private caches built explicitly keep the historical unbounded default.
DEFAULT_SHARED_MAX_ENTRIES = 64

#: Process-wide default cache used when callers do not pass their own.
#: Bounded so a long-lived multi-client process cannot leak substrates
#: (see DEFAULT_SHARED_MAX_ENTRIES); completed entries past the cap are
#: evicted oldest-first and transparently recomputed on re-request.
_GLOBAL_CACHE = SubstrateCache(max_entries=DEFAULT_SHARED_MAX_ENTRIES)


def shared_substrates() -> SubstrateCache:
    """The process-wide substrate cache (bounded, see DEFAULT_SHARED_MAX_ENTRIES)."""
    return _GLOBAL_CACHE


def resolve_substrates(
    substrates: Optional[SubstrateCache],
    substrate_cache_dir: Optional[Union[str, Path]],
    jobs: Optional[int],
) -> SubstrateCache:
    """Resolve a runner's ``(substrates, substrate_cache_dir, jobs)`` trio.

    The shared constructor convention of every runner: an explicit cache
    wins (the convenience knobs are then rejected — configure the cache
    directly instead), the knobs build a private cache, and with nothing
    given the process-wide shared cache is used.
    """
    if substrates is not None:
        if substrate_cache_dir is not None or jobs is not None:
            raise ValueError(
                "pass either substrates or substrate_cache_dir/jobs, not "
                "both; use SubstrateCache(persist_dir=..., jobs=...) to "
                "combine them")
        return substrates
    if substrate_cache_dir is not None or jobs is not None:
        return SubstrateCache(persist_dir=substrate_cache_dir,
                              jobs=jobs if jobs is not None else 1)
    return shared_substrates()


__all__ = [
    "DEFAULT_SHARED_MAX_ENTRIES",
    "SubstrateCache",
    "resolve_substrates",
    "shared_substrates",
]
