"""A Boavizta-style attributional estimator.

Boavizta's server methodology splits impact into a **manufacture** share —
the reference server's embodied impact scaled by the fraction of its
lifetime the usage period represents — and a **use** share computed from a
load profile against the server's published power curve.  The estimator
below reproduces that structure over our node specs so it can be compared
against the paper's measured-energy approach and against the bottom-up
component estimator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

from repro.embodied.bottom_up import BottomUpEstimator
from repro.inventory.node import NodeSpec
from repro.power.node_power import NodePowerModel
from repro.units.quantities import CarbonIntensity


#: Boavizta's default time-at-load profile for servers (fraction of time
#: spent at each load level).
DEFAULT_LOAD_PROFILE: Dict[float, float] = {0.0: 0.15, 0.1: 0.20, 0.5: 0.50, 1.0: 0.15}


@dataclass(frozen=True)
class BoaviztaStyleEstimator:
    """Manufacture-share plus use-share estimation in the Boavizta style.

    Parameters
    ----------
    reference_lifetime_years:
        Lifetime over which the manufacture impact is attributed.
    load_profile:
        Mapping of load level (0-1) to fraction of time spent there; the
        fractions must sum to 1.
    """

    reference_lifetime_years: float = 4.0
    load_profile: Mapping[float, float] = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.reference_lifetime_years <= 0:
            raise ValueError("reference_lifetime_years must be positive")
        profile = dict(self.load_profile) if self.load_profile is not None else dict(DEFAULT_LOAD_PROFILE)
        if not profile:
            raise ValueError("load_profile must be non-empty")
        for load, fraction in profile.items():
            if not 0.0 <= load <= 1.0:
                raise ValueError("load levels must be in [0, 1]")
            if fraction < 0:
                raise ValueError("time fractions must be non-negative")
        total = sum(profile.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"load-profile fractions must sum to 1, got {total:.6f}")
        object.__setattr__(self, "load_profile", profile)

    # -- manufacture share -------------------------------------------------------------

    def manufacture_share_kg(self, spec: NodeSpec, hours: float) -> float:
        """Embodied impact attributed to ``hours`` of use of one server."""
        if hours < 0:
            raise ValueError("hours must be non-negative")
        estimator = BottomUpEstimator()
        total_embodied = estimator.node_total_kgco2(spec)
        lifetime_hours = self.reference_lifetime_years * 365.0 * 24.0
        return total_embodied * min(hours / lifetime_hours, 1.0)

    # -- use share ----------------------------------------------------------------------

    def average_power_w(self, spec: NodeSpec) -> float:
        """Load-profile-weighted average power of one server."""
        model = NodePowerModel(spec)
        return float(
            sum(
                fraction * float(model.wall_power_w(load))
                for load, fraction in self.load_profile.items()
            )
        )

    def use_share_kg(
        self, spec: NodeSpec, hours: float, intensity: CarbonIntensity
    ) -> float:
        """Operational impact of ``hours`` of use of one server."""
        if hours < 0:
            raise ValueError("hours must be non-negative")
        kwh = self.average_power_w(spec) * hours / 1000.0
        return kwh * intensity.g_per_kwh / 1000.0

    # -- combined -------------------------------------------------------------------------

    def server_total_kg(
        self, spec: NodeSpec, hours: float, intensity: CarbonIntensity
    ) -> Dict[str, float]:
        """Manufacture, use and total impact for one server over ``hours``."""
        manufacture = self.manufacture_share_kg(spec, hours)
        use = self.use_share_kg(spec, hours, intensity)
        return {
            "manufacture_kg": manufacture,
            "use_kg": use,
            "total_kg": manufacture + use,
        }

    def fleet_total_kg(
        self,
        specs: Sequence[NodeSpec],
        hours: float,
        intensity: CarbonIntensity,
    ) -> Dict[str, float]:
        """Summed impact over a fleet of (possibly heterogeneous) servers."""
        manufacture = 0.0
        use = 0.0
        for spec in specs:
            result = self.server_total_kg(spec, hours, intensity)
            manufacture += result["manufacture_kg"]
            use += result["use_kg"]
        return {
            "manufacture_kg": manufacture,
            "use_kg": use,
            "total_kg": manufacture + use,
        }


__all__ = ["BoaviztaStyleEstimator", "DEFAULT_LOAD_PROFILE"]
