"""A Cloud Carbon Footprint (CCF) style estimator.

CCF estimates cloud energy as::

    energy = hours x (min_watts + utilisation x (max_watts - min_watts)) / 1000

per instance, multiplies by PUE, converts with a regional grid factor, and
adds embodied emissions amortised linearly over four years.  The estimator
below reproduces that method over our inventory so the ablation bench can
compare it with the measured campaign and with the paper's model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.inventory.node import NodeInstance
from repro.power.node_power import NodePowerModel
from repro.units.quantities import Carbon, CarbonIntensity


@dataclass(frozen=True)
class CCFStyleEstimator:
    """Usage + embodied estimation in the Cloud Carbon Footprint style.

    Parameters
    ----------
    assumed_utilization:
        The flat utilisation assumed for every node (CCF's default is 50%).
    pue:
        Facility overhead multiplier (CCF uses cloud-provider averages).
    embodied_amortization_years:
        Straight-line amortisation period for embodied emissions.
    """

    assumed_utilization: float = 0.5
    pue: float = 1.135
    embodied_amortization_years: float = 4.0

    def __post_init__(self):
        if not 0.0 <= self.assumed_utilization <= 1.0:
            raise ValueError("assumed_utilization must be in [0, 1]")
        if self.pue < 1.0:
            raise ValueError("pue must be at least 1.0")
        if self.embodied_amortization_years <= 0:
            raise ValueError("embodied_amortization_years must be positive")

    # -- usage term ------------------------------------------------------------------

    def node_average_watts(self, node: NodeInstance) -> float:
        """CCF's min + util x (max - min) interpolation for one node."""
        model = NodePowerModel(node.spec)
        min_watts = model.idle_wall_power_w
        max_watts = model.max_wall_power_w
        return min_watts + self.assumed_utilization * (max_watts - min_watts)

    def usage_energy_kwh(self, nodes: Sequence[NodeInstance], hours: float) -> float:
        """Estimated energy (kWh) including the PUE multiplier."""
        if hours < 0:
            raise ValueError("hours must be non-negative")
        watts = sum(self.node_average_watts(node) for node in nodes)
        return watts * hours / 1000.0 * self.pue

    def usage_carbon(
        self, nodes: Sequence[NodeInstance], hours: float, intensity: CarbonIntensity
    ) -> Carbon:
        """Usage (operational) carbon for the fleet."""
        kwh = self.usage_energy_kwh(nodes, hours)
        return Carbon.from_g(kwh * intensity.g_per_kwh)

    # -- embodied term ----------------------------------------------------------------

    def embodied_carbon_kg(
        self, nodes: Sequence[NodeInstance], hours: float,
        default_embodied_kg: float = 1000.0,
    ) -> float:
        """Embodied carbon attributed to ``hours`` of use.

        CCF amortises a per-server manufacturing figure linearly over
        ``embodied_amortization_years``; nodes without a datasheet value
        fall back to ``default_embodied_kg`` (CCF's own default is about a
        tonne per server).
        """
        if hours < 0:
            raise ValueError("hours must be non-negative")
        if default_embodied_kg <= 0:
            raise ValueError("default_embodied_kg must be positive")
        lifetime_hours = self.embodied_amortization_years * 365.0 * 24.0
        total = 0.0
        for node in nodes:
            embodied = node.spec.embodied_kgco2_datasheet or default_embodied_kg
            total += embodied * (hours / lifetime_hours)
        return total

    # -- combined ---------------------------------------------------------------------

    def total_carbon_kg(
        self,
        nodes: Sequence[NodeInstance],
        hours: float,
        intensity: CarbonIntensity,
        default_embodied_kg: float = 1000.0,
    ) -> Dict[str, float]:
        """Usage, embodied and total carbon in kg for the fleet and period."""
        usage = self.usage_carbon(nodes, hours, intensity).kg
        embodied = self.embodied_carbon_kg(nodes, hours, default_embodied_kg)
        return {"usage_kg": usage, "embodied_kg": embodied, "total_kg": usage + embodied}


__all__ = ["CCFStyleEstimator"]
