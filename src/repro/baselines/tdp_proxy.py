"""TDP-proxy energy estimation.

The simplest estimate of a cluster's energy when nothing is measured:
assume every node draws ``tdp_fraction`` of its CPU TDP (plus nothing
else), for every hour of the period.  It is used as the crudest baseline in
the measurement-method ablation; its error against the measured campaign
illustrates why the paper insists on actual measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.inventory.node import NodeInstance
from repro.units.quantities import Carbon, CarbonIntensity, Energy


@dataclass(frozen=True)
class TDPProxyEstimator:
    """Estimate energy as a flat fraction of CPU TDP.

    Parameters
    ----------
    tdp_fraction:
        Fraction of the summed CPU TDP assumed to be drawn continuously.
        Values near 0.6-0.7 are commonly quoted; 1.0 gives the worst-case
        nameplate estimate.
    """

    tdp_fraction: float = 0.65

    def __post_init__(self):
        if not 0.0 < self.tdp_fraction <= 1.5:
            raise ValueError("tdp_fraction must be in (0, 1.5]")

    def node_power_w(self, node: NodeInstance) -> float:
        """Assumed constant draw of one node."""
        return node.spec.cpu_tdp_w * self.tdp_fraction

    def estimate_energy_kwh(self, nodes: Sequence[NodeInstance], hours: float) -> float:
        """Estimated energy of a fleet over ``hours`` hours."""
        if hours < 0:
            raise ValueError("hours must be non-negative")
        watts = sum(self.node_power_w(node) for node in nodes)
        return watts * hours / 1000.0

    def estimate_energy(self, nodes: Sequence[NodeInstance], hours: float) -> Energy:
        """Quantity version of :meth:`estimate_energy_kwh`."""
        return Energy.from_kwh(self.estimate_energy_kwh(nodes, hours))

    def estimate_carbon(
        self,
        nodes: Sequence[NodeInstance],
        hours: float,
        intensity: CarbonIntensity,
        pue: float = 1.0,
    ) -> Carbon:
        """Estimated active carbon for the fleet, optionally PUE-scaled."""
        if pue < 1.0:
            raise ValueError("pue must be at least 1.0")
        energy_kwh = self.estimate_energy_kwh(nodes, hours) * pue
        return intensity.carbon_for(Energy.from_kwh(energy_kwh))


__all__ = ["TDPProxyEstimator"]
