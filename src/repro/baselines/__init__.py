"""Baseline estimators the measured approach is compared against.

The paper's approach — measure the energy, then convert — is compared in
the ablation benches against the estimate-based approaches used by nearby
tools when no measurement is available:

* :mod:`~repro.baselines.tdp_proxy` — assume every node draws a fixed
  fraction of its TDP (the common back-of-envelope method).
* :mod:`~repro.baselines.ccf_style` — the Cloud Carbon Footprint method:
  interpolate between published min/max wattages using an assumed average
  utilisation, add a PUE multiplier and a flat amortised embodied figure.
* :mod:`~repro.baselines.boavizta_style` — a Boavizta-style attributional
  split of a reference server's embodied impact by the share of its
  lifetime the usage period represents, plus a usage term from a load
  profile.
"""

from repro.baselines.tdp_proxy import TDPProxyEstimator
from repro.baselines.ccf_style import CCFStyleEstimator
from repro.baselines.boavizta_style import BoaviztaStyleEstimator

__all__ = ["TDPProxyEstimator", "CCFStyleEstimator", "BoaviztaStyleEstimator"]
