"""The serving middle tier: admission, coalescing, catalog read-through.

:class:`ServeApp` is the application object behind every endpoint.  It owns
the three long-lived resources a hosted deployment must share across
requests —

* one bounded :class:`~repro.api.substrates.SubstrateCache` (so concurrent
  requests for the same physical configuration coalesce on one in-flight
  simulation, and a long-lived process cannot leak substrates);
* one optional :class:`~repro.catalog.CatalogRecorder` (so repeat specs
  are served from the run catalog with zero simulations, and every live
  answer is recorded);
* one bounded worker pool with an explicit admission counter (so overload
  is an immediate ``429`` + ``Retry-After``, never unbounded growth).

The compute path is exactly the library path: each request builds the
ordinary façade (:class:`~repro.api.Assessment`,
:class:`~repro.api.TemporalAssessment`, the ensemble runners,
:class:`~repro.portfolio.PortfolioRunner`) over the shared cache and
recorder, so everything the library guarantees — bit-identical served
repeats, simulate-once sweeps, per-waiter exception clones — holds across
HTTP clients too.
"""

from __future__ import annotations

import asyncio
import importlib
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from repro.api.substrates import (
    DEFAULT_SHARED_MAX_ENTRIES,
    SubstrateCache,
)

#: Default size of the worker pool (concurrently *executing* requests).
DEFAULT_WORKERS = 4

#: Default admission queue depth beyond the executing workers.
DEFAULT_QUEUE_LIMIT = 16

#: Default per-request wall-clock budget before the server answers 504.
DEFAULT_REQUEST_TIMEOUT_S = 300.0

#: The POST endpoints and the run kinds they execute.
RUN_KINDS = ("assess", "temporal", "uncertainty", "portfolio")


class ServeError(Exception):
    """Base of every error the serving layer maps to an HTTP status."""

    status = 500

    def as_dict(self) -> Dict[str, Any]:
        return {"error": str(self), "status": self.status}


class BadRequest(ServeError):
    """A malformed or unresolvable request document (HTTP 400)."""

    status = 400


class Overloaded(ServeError):
    """Admission refused: workers and queue are full (HTTP 429)."""

    status = 429

    def __init__(self, message: str, retry_after_s: float):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class RequestTimeout(ServeError):
    """The request exceeded its wall-clock budget (HTTP 504)."""

    status = 504


class ServerClosing(ServeError):
    """The server is draining and admits no new work (HTTP 503)."""

    status = 503


@dataclass(frozen=True)
class ServeConfig:
    """Everything one ``repro serve`` deployment is configured by.

    Attributes
    ----------
    host / port:
        Bind address; port 0 picks an ephemeral port (tests).
    workers:
        Worker-thread count — how many requests *execute* concurrently.
        Also the default for ``jobs`` is independent: ``jobs`` controls
        intra-simulation site concurrency, ``workers`` controls
        cross-request concurrency.
    queue_limit:
        How many admitted requests may wait beyond the executing
        ``workers`` before new arrivals get 429.
    request_timeout_s:
        Per-request wall-clock budget; on expiry the client gets 504 and
        the admission slot is released when the worker actually finishes.
    retry_after_s:
        The ``Retry-After`` hint attached to 429 responses.
    max_substrates:
        ``max_entries`` bound of the server-owned substrate cache.
    substrate_cache_dir:
        Optional on-disk snapshot cache shared across restarts.
    jobs:
        Sites simulated concurrently inside one snapshot run.
    catalog:
        Optional run-catalog path: enables read-through serving and
        records every live run.
    tags:
        Tags attached to catalogued runs recorded by this server.
    plugins:
        Module names imported at startup (and re-imported by
        :meth:`ServeApp.reload_plugins`); they register components
        through the ordinary registries.
    """

    host: str = "127.0.0.1"
    port: int = 8035
    workers: int = DEFAULT_WORKERS
    queue_limit: int = DEFAULT_QUEUE_LIMIT
    request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S
    retry_after_s: float = 1.0
    max_substrates: Optional[int] = DEFAULT_SHARED_MAX_ENTRIES
    substrate_cache_dir: Optional[Union[str, Path]] = None
    jobs: Optional[int] = 1
    catalog: Optional[Union[str, Path]] = None
    tags: Tuple[str, ...] = ()
    plugins: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.queue_limit < 0:
            raise ValueError("queue_limit must be non-negative")
        if self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive")

    @property
    def capacity(self) -> int:
        """Admitted requests allowed at once (executing + queued)."""
        return self.workers + self.queue_limit


class ServeApp:
    """The long-lived application state shared by every request.

    Parameters
    ----------
    config:
        The deployment configuration (:class:`ServeConfig`).
    substrates:
        Inject a prebuilt cache (tests, embedding); by default the app
        builds its own bounded cache from the config.
    catalog:
        Inject a catalog / recorder directly instead of ``config.catalog``
        (same coercion contract as every façade's ``catalog=``).
    """

    def __init__(self, config: Optional[ServeConfig] = None, *,
                 substrates: Optional[SubstrateCache] = None,
                 catalog=None):
        self._config = config if config is not None else ServeConfig()
        self._substrates = substrates if substrates is not None else (
            SubstrateCache(persist_dir=self._config.substrate_cache_dir,
                           jobs=self._config.jobs,
                           max_entries=self._config.max_substrates))
        if catalog is None:
            catalog = self._config.catalog
        self._recorder = self._coerce_catalog(catalog)
        self._pool = ThreadPoolExecutor(
            max_workers=self._config.workers,
            thread_name_prefix="repro-serve")
        self._gate = threading.Lock()
        self._admitted = 0
        self._executing = 0
        self._draining = False
        self._drained = threading.Event()
        self._counters: Dict[str, int] = {
            "completed": 0, "errors": 0, "rejected_overload": 0,
            "timeouts": 0, "served_from_catalog": 0, "served_live": 0,
        }
        self._kind_counters: Dict[str, int] = {kind: 0 for kind in RUN_KINDS}
        self._loaded_plugins: Tuple[str, ...] = ()
        if self._config.plugins:
            self.reload_plugins()

    def _coerce_catalog(self, catalog):
        if catalog is None:
            return None
        from repro.catalog.record import CatalogRecorder

        recorder = CatalogRecorder.coerce(catalog)
        if self._config.tags:
            recorder = recorder.with_tags(*self._config.tags)
        return recorder

    # -- introspection ---------------------------------------------------------------

    @property
    def config(self) -> ServeConfig:
        return self._config

    @property
    def substrates(self) -> SubstrateCache:
        return self._substrates

    @property
    def recorder(self):
        return self._recorder

    def stats(self) -> Dict[str, Any]:
        """One structured snapshot of every counter the server keeps.

        This is the ``GET /stats`` payload: cache hit/run/load counters,
        in-flight and queue depths, per-endpoint request counts, and the
        admission/overload tallies.
        """
        with self._gate:
            admitted = self._admitted
            executing = self._executing
            draining = self._draining
            counters = dict(self._counters)
            kinds = dict(self._kind_counters)
        cache = self._substrates
        stats: Dict[str, Any] = {
            "server": {
                "workers": self._config.workers,
                "queue_limit": self._config.queue_limit,
                "in_flight": executing,
                "queued": max(0, admitted - executing),
                "admitted": admitted,
                "capacity": self._config.capacity,
                "draining": draining,
                "plugins": list(self._loaded_plugins),
            },
            "requests": dict(counters, by_kind=kinds),
            "substrates": {
                "snapshot_runs": cache.snapshot_runs,
                "snapshot_hits": cache.snapshot_hits,
                "snapshot_loads": cache.snapshot_loads,
                "entries": len(cache._slots),
                "max_entries": cache._max_entries,
            },
        }
        if self._recorder is not None:
            stats["catalog"] = {
                "path": str(self._recorder.catalog.path),
                "runs": self._recorder.catalog.count(),
            }
        else:
            stats["catalog"] = None
        return stats

    # -- the compute path (runs on worker threads) -----------------------------------

    def handle(self, kind: str, doc: Any) -> Tuple[Dict[str, Any], str]:
        """Execute one request document synchronously.

        Returns ``(payload, source)`` where ``source`` is ``"catalog"``
        for a read-through hit and ``"live"`` for a fresh computation.
        Raises :class:`BadRequest` for anything wrong with the document
        itself (unknown fields, unregistered components, bad types).
        """
        if kind not in RUN_KINDS:
            raise BadRequest(f"unknown run kind {kind!r}; expected one of "
                             f"{', '.join(RUN_KINDS)}")
        if not isinstance(doc, dict):
            raise BadRequest(
                f"{kind} request body must be a JSON object, got "
                f"{type(doc).__name__}")
        from repro.catalog.schema import CatalogError

        try:
            result = getattr(self, f"_run_{kind}")(doc)
        except ServeError:
            raise
        except (KeyError, ValueError, TypeError, CatalogError) as exc:
            raise BadRequest(str(exc)) from exc
        served = bool(getattr(result, "served_from_catalog", False))
        return result.as_dict(), ("catalog" if served else "live")

    def _run_assess(self, doc: Dict[str, Any]):
        from repro.api import Assessment, AssessmentSpec

        spec = AssessmentSpec.from_dict(doc)
        return Assessment.from_spec(spec, substrates=self._substrates,
                                    catalog=self._recorder).run()

    def _run_temporal(self, doc: Dict[str, Any]):
        from repro.api import AssessmentSpec, TemporalAssessment

        spec = AssessmentSpec.from_dict(doc)
        return TemporalAssessment.from_spec(
            spec, substrates=self._substrates, catalog=self._recorder).run()

    def _run_uncertainty(self, doc: Dict[str, Any]):
        from repro.uncertainty import EnsembleRunner, TemporalEnsembleRunner

        if "spec" not in doc:
            raise BadRequest(
                'an uncertainty request wraps its spec: {"spec": {...}, '
                '"n_samples": N, "seed": S, "method": ..., '
                '"temporal": false}')
        known = {"spec", "n_samples", "seed", "method", "temporal"}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise BadRequest(
                f"unknown uncertainty request fields: {', '.join(unknown)}; "
                f"expected a subset of {', '.join(sorted(known))}")
        spec = self._uncertain_spec(doc["spec"])
        n_samples = int(doc.get("n_samples", 1000))
        seed = doc.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise BadRequest("uncertainty seed must be an integer (served "
                             "runs are content-addressed by it)")
        if doc.get("temporal", False):
            if "method" in doc:
                raise BadRequest(
                    "method only applies to the static ensemble, "
                    "not temporal=true")
            runner = TemporalEnsembleRunner(
                spec, substrates=self._substrates, catalog=self._recorder)
            return runner.run(n_samples=n_samples, seed=seed)
        runner = EnsembleRunner(spec, substrates=self._substrates,
                                catalog=self._recorder)
        return runner.run(n_samples=n_samples, seed=seed,
                          method=doc.get("method", "auto"))

    @staticmethod
    def _uncertain_spec(data: Any):
        """A spec document with distribution objects, or a plain spec.

        A plain spec (no ``{"dist": ...}`` fields) gets the paper's
        default input envelope attached — the same convenience as
        ``repro uncertainty --spec`` on the command line.
        """
        from repro.api import AssessmentSpec
        from repro.uncertainty import UncertainSpec
        from repro.uncertainty.distributions import DIST_KEY

        if not isinstance(data, dict):
            raise BadRequest('uncertainty "spec" must be a JSON object')
        has_distributions = any(
            isinstance(value, dict) and DIST_KEY in value
            for value in data.values())
        if has_distributions:
            return UncertainSpec.from_dict(data)
        return AssessmentSpec.from_dict(data)

    def _run_portfolio(self, doc: Dict[str, Any]):
        from repro.portfolio import PortfolioRunner, PortfolioSpec

        spec = PortfolioSpec.from_dict(doc)
        return PortfolioRunner(spec, substrates=self._substrates,
                               catalog=self._recorder).run()

    # -- admission and execution -------------------------------------------------------

    def _admit(self, kind: str) -> None:
        with self._gate:
            if self._draining:
                raise ServerClosing(
                    "server is draining and admits no new requests")
            if self._admitted >= self._config.capacity:
                self._counters["rejected_overload"] += 1
                raise Overloaded(
                    f"at capacity ({self._config.workers} executing + "
                    f"{self._config.queue_limit} queued); retry shortly",
                    retry_after_s=self._config.retry_after_s)
            self._admitted += 1
            self._kind_counters[kind] += 1
            self._drained.clear()

    def _execute(self, kind: str, doc: Any) -> Tuple[Dict[str, Any], str]:
        with self._gate:
            self._executing += 1
        try:
            payload, source = self.handle(kind, doc)
        except BaseException:
            with self._gate:
                self._executing -= 1
                self._counters["errors"] += 1
            raise
        with self._gate:
            self._executing -= 1
            self._counters["completed"] += 1
            self._counters["served_from_catalog" if source == "catalog"
                           else "served_live"] += 1
        return payload, source

    def _release(self, _future) -> None:
        """Free the admission slot when the worker actually finishes.

        Runs as the pool future's done callback — including after a
        client-side timeout abandoned the response — so the admission
        accounting always reflects real thread occupancy.
        """
        with self._gate:
            self._admitted -= 1
            if self._admitted == 0 and self._draining:
                self._drained.set()

    async def submit(self, kind: str, doc: Any) -> Tuple[Dict[str, Any], str]:
        """Admit, execute on the pool, await with the request timeout.

        Raises :class:`Overloaded` / :class:`ServerClosing` at admission,
        :class:`RequestTimeout` on budget expiry (the underlying worker
        keeps running; its slot is released on completion), and whatever
        :meth:`handle` raised otherwise.
        """
        self._admit(kind)
        try:
            future = self._pool.submit(self._execute, kind, doc)
        except BaseException:
            self._release(None)
            raise
        future.add_done_callback(self._release)
        wrapped = asyncio.wrap_future(future)
        try:
            return await asyncio.wait_for(
                wrapped, timeout=self._config.request_timeout_s)
        except asyncio.TimeoutError:
            with self._gate:
                self._counters["timeouts"] += 1
            raise RequestTimeout(
                f"request exceeded its {self._config.request_timeout_s:g}s "
                f"budget") from None

    # -- lifecycle ---------------------------------------------------------------------

    def reload_plugins(self) -> Tuple[str, ...]:
        """(Re-)import every configured plugin module; returns their names.

        A module seen before is reloaded (``importlib.reload``) so edits
        take effect; fresh names are imported.  Plugins register
        components through the ordinary registries with
        ``overwrite=True`` — and because substrate cache keys include the
        resolved factory, the very next request uses the new component
        instead of a stale cached series.
        """
        import sys

        loaded = []
        for name in self._config.plugins:
            module = sys.modules.get(name)
            try:
                if module is not None:
                    importlib.reload(module)
                else:
                    importlib.import_module(name)
            except Exception as exc:
                raise BadRequest(
                    f"plugin module {name!r} failed to load: {exc}") from exc
            loaded.append(name)
        self._loaded_plugins = tuple(loaded)
        return self._loaded_plugins

    def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Stop admitting, wait for in-flight requests, shut the pool down.

        Returns ``True`` when every admitted request finished inside the
        timeout.  Idempotent; new submissions during and after the drain
        get :class:`ServerClosing`.
        """
        with self._gate:
            self._draining = True
            if self._admitted == 0:
                self._drained.set()
        drained = self._drained.wait(timeout_s)
        self._pool.shutdown(wait=False)
        return drained

    def close(self) -> None:
        """Drain with no grace period (tests and error paths)."""
        self.drain(timeout_s=0.0)


__all__ = [
    "BadRequest",
    "DEFAULT_QUEUE_LIMIT",
    "DEFAULT_REQUEST_TIMEOUT_S",
    "DEFAULT_WORKERS",
    "Overloaded",
    "RequestTimeout",
    "RUN_KINDS",
    "ServeApp",
    "ServeConfig",
    "ServeError",
    "ServerClosing",
]
