"""The stdlib asyncio HTTP front of the serving layer.

Deliberately small: HTTP/1.1 request parsing, routing, JSON responses and
the graceful-shutdown plumbing live here; everything interesting
(admission, coalescing, catalog read-through) is the
:class:`~repro.serve.app.ServeApp` middle tier.  One connection carries one
request (``Connection: close``), which every stdlib and curl client
handles; a hosted deployment that needs keep-alive puts a reverse proxy in
front, as the ROADMAP's armi-style app-over-library split intends.

Routes::

    GET  /healthz      liveness probe
    GET  /stats        cache / admission / catalog counters
    POST /assess       AssessmentSpec JSON document
    POST /temporal     AssessmentSpec JSON document
    POST /uncertainty  {"spec": {...}, "n_samples", "seed", "method", "temporal"}
    POST /portfolio    PortfolioSpec JSON document
    POST /reload       re-import the configured plugin modules

Every response is JSON.  Success responses carry ``X-Repro-Source:
live|catalog`` so clients (and the CI smoke test) can tell a fresh
simulation from a catalog read-through without the payload bytes differing.
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Any, Dict, Optional, Tuple

from repro.io.jsonio import json_default

from repro.serve.app import (
    RUN_KINDS,
    Overloaded,
    ServeApp,
    ServeConfig,
    ServeError,
)

#: Caps keeping a misbehaving client from ballooning server memory.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024

#: How long a SIGTERM drain waits for in-flight requests before exiting.
DEFAULT_DRAIN_TIMEOUT_S = 30.0

_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _encode_json(payload: Any) -> bytes:
    """The one serialiser every response body goes through.

    ``sort_keys`` + ``json_default`` make a live result and its later
    catalog-served repeat byte-identical — the property the CI smoke test
    pins with ``cmp``.
    """
    return (json.dumps(payload, sort_keys=True, default=json_default)
            .encode("utf-8") + b"\n")


class _HttpError(Exception):
    """A protocol-level problem answered before reaching the app."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class ReproServer:
    """One bound asyncio server over one :class:`ServeApp`.

    ::

        app = ServeApp(ServeConfig(port=0))
        server = ReproServer(app)
        await server.start()
        ...
        await server.shutdown()
    """

    def __init__(self, app: ServeApp, *, host: Optional[str] = None,
                 port: Optional[int] = None):
        self._app = app
        self._host = host if host is not None else app.config.host
        self._port = port if port is not None else app.config.port
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()

    @property
    def app(self) -> ServeApp:
        return self._app

    @property
    def port(self) -> int:
        """The bound port (resolves port 0 after :meth:`start`)."""
        if self._server is None:
            return self._port
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        return f"http://{self._host}:{self.port}"

    # -- lifecycle -------------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_client, self._host, self._port)

    async def shutdown(self,
                       drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S) -> bool:
        """Stop accepting, finish open connections, drain the worker pool.

        Returns ``True`` when everything in flight completed within the
        timeout — the SIGTERM path exits 0 either way, but reports a
        dirty drain.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._connections:
            await asyncio.wait(
                {asyncio.ensure_future(task) for task in self._connections},
                timeout=drain_timeout_s)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, self._app.drain, drain_timeout_s)

    # -- per-connection handling -------------------------------------------------------

    async def _on_client(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _HttpError as exc:
                await self._respond(writer, exc.status, {
                    "error": str(exc), "status": exc.status})
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return  # client went away mid-request; nothing to answer
            status, payload, headers = await self._route(method, path, body)
            await self._respond(writer, status, payload, headers)
        except ConnectionError:
            pass  # response write raced a client disconnect
        finally:
            self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _read_request(
            self, reader: asyncio.StreamReader) -> Tuple[str, str, bytes]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _HttpError(413, "request head too large") from None
        if len(head) > MAX_HEADER_BYTES:
            raise _HttpError(413, "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _HttpError(400, f"malformed request line: {lines[0]!r}")
        method, path, _version = parts
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header line: {line!r}")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise _HttpError(400,
                             f"bad Content-Length: {length_text!r}") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body of {length} bytes exceeds the "
                                  f"{MAX_BODY_BYTES}-byte cap")
        body = await reader.readexactly(length) if length else b""
        return method, path.split("?", 1)[0], body

    # -- routing ---------------------------------------------------------------------

    async def _route(self, method: str, path: str,
                     body: bytes) -> Tuple[int, Any, Dict[str, str]]:
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "healthz is GET"}, {}
            return 200, {"status": "ok"}, {}
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "stats is GET"}, {}
            return 200, self._app.stats(), {}
        if path == "/reload":
            if method != "POST":
                return 405, {"error": "reload is POST"}, {}
            try:
                reloaded = self._app.reload_plugins()
            except ServeError as exc:
                return exc.status, exc.as_dict(), {}
            return 200, {"reloaded": list(reloaded)}, {}
        kind = path.lstrip("/")
        if kind not in RUN_KINDS:
            return 404, {
                "error": f"no endpoint {path!r}; POST one of "
                         f"{', '.join('/' + k for k in RUN_KINDS)} or GET "
                         f"/healthz, /stats", "status": 404}, {}
        if method != "POST":
            return 405, {"error": f"/{kind} takes POST with a JSON body"}, {}
        try:
            doc = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": f"request body is not valid JSON: {exc}",
                         "status": 400}, {}
        try:
            payload, source = await self._app.submit(kind, doc)
        except Overloaded as exc:
            headers = {"Retry-After": f"{max(1, round(exc.retry_after_s))}"}
            return exc.status, exc.as_dict(), headers
        except ServeError as exc:
            return exc.status, exc.as_dict(), {}
        except Exception as exc:  # noqa: BLE001 - the server must not die
            return 500, {"error": f"{type(exc).__name__}: {exc}",
                         "status": 500}, {}
        return 200, payload, {"X-Repro-Source": source}

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Any,
                       headers: Optional[Dict[str, str]] = None) -> None:
        body = _encode_json(payload)
        head_lines = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (headers or {}).items():
            head_lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(head_lines) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()


async def _serve_until_signalled(app: ServeApp, *,
                                 drain_timeout_s: float,
                                 ready=None, banner=None) -> Dict[str, Any]:
    """Run the bound server until SIGTERM/SIGINT, then drain gracefully."""
    server = ReproServer(app)
    await server.start()
    if banner is not None:
        banner(server)
    if ready is not None:
        ready(server)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-POSIX loop; Ctrl-C still raises KeyboardInterrupt
    try:
        await stop.wait()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        clean = await server.shutdown(drain_timeout_s)
    return {"clean_drain": clean, "stats": app.stats()}


def serve_forever(config: Optional[ServeConfig] = None, *,
                  app: Optional[ServeApp] = None,
                  drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S,
                  banner=None) -> Dict[str, Any]:
    """Blocking entry point: serve until SIGTERM/SIGINT, drain, return.

    Returns ``{"clean_drain": bool, "stats": {...}}`` — the CLI renders
    the final stats table from it and exits 0 on a clean drain.
    """
    if app is None:
        app = ServeApp(config)
    return asyncio.run(_serve_until_signalled(
        app, drain_timeout_s=drain_timeout_s, banner=banner))


__all__ = [
    "DEFAULT_DRAIN_TIMEOUT_S",
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "ReproServer",
    "serve_forever",
]
