"""The assessment serving layer: ``repro serve``.

This package turns the library into a long-running hosted application — the
ROADMAP's "millions of users" front door — without forking the core.  The
architecture is app-over-library: the HTTP layer (:mod:`repro.serve.http`)
is a thin stdlib asyncio server, and every interesting property lives in
the middle tier (:mod:`repro.serve.app`):

* **cross-request coalescing** — all requests funnel through one
  server-owned :class:`~repro.api.substrates.SubstrateCache`, so two
  clients posting specs with the same physical configuration share a
  single in-flight simulation;
* **catalog read-through** — with ``catalog=`` configured, a repeat spec
  is served from the run catalog with zero simulations, bit-identical to
  the recorded run, exactly like the library path;
* **bounded admission** — a fixed worker pool with an explicit admission
  queue; past capacity the server answers ``429`` with ``Retry-After``
  instead of growing threads without bound;
* **graceful lifecycle** — SIGTERM stops accepting, drains in-flight
  requests, and exits 0; per-request timeouts release their admission
  slot when the work actually finishes;
* **hot-reloadable components** — plugin modules register through the
  existing string-keyed registries (``overwrite=True``), and because
  substrate cache keys include the resolved factory, a reloaded component
  takes effect on the next request without a restart.

::

    repro serve --port 8035 --workers 4 --catalog runs.db

    curl -s localhost:8035/healthz
    curl -s -X POST localhost:8035/assess -d '{"node_scale": 0.05}'
    curl -s localhost:8035/stats
"""

from repro.serve.app import (
    DEFAULT_QUEUE_LIMIT,
    DEFAULT_REQUEST_TIMEOUT_S,
    DEFAULT_WORKERS,
    BadRequest,
    Overloaded,
    RequestTimeout,
    ServeApp,
    ServeConfig,
    ServeError,
    ServerClosing,
)
from repro.serve.http import ReproServer, serve_forever

__all__ = [
    "BadRequest",
    "DEFAULT_QUEUE_LIMIT",
    "DEFAULT_REQUEST_TIMEOUT_S",
    "DEFAULT_WORKERS",
    "Overloaded",
    "ReproServer",
    "RequestTimeout",
    "ServeApp",
    "ServeConfig",
    "ServeError",
    "ServerClosing",
    "serve_forever",
]
