"""Aligning series that cover different time windows.

Instruments start and stop at slightly different times during a measurement
campaign; before series can be combined element-wise they have to share the
same start, step and length.  These helpers trim a group of same-step series
to their common overlapping window.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.timeseries.series import TimeSeries, TimeSeriesError


def common_window(series: Sequence[TimeSeries]) -> Tuple[float, float]:
    """The ``(start, end)`` window covered by *all* of the given series."""
    if not series:
        raise TimeSeriesError("common_window requires at least one series")
    start = max(s.start for s in series)
    end = min(s.end for s in series)
    if end <= start:
        raise TimeSeriesError("the given series have no common overlap")
    return start, end


def align_pair(a: TimeSeries, b: TimeSeries) -> Tuple[TimeSeries, TimeSeries]:
    """Trim two same-step series to their common window.

    The series must have equal steps and their sample grids must coincide on
    the overlap (i.e. starts differ by an integer number of steps).
    """
    aligned = align_many([a, b])
    return aligned[0], aligned[1]


def align_many(series: Sequence[TimeSeries]) -> list[TimeSeries]:
    """Trim several same-step series to their common overlapping window."""
    if not series:
        raise TimeSeriesError("align_many requires at least one series")
    step = series[0].step
    for s in series[1:]:
        if not np.isclose(s.step, step):
            raise TimeSeriesError(
                f"align_many requires equal steps, got {step} and {s.step}"
            )
        offset = (s.start - series[0].start) / step
        if not np.isclose(offset, round(offset)):
            raise TimeSeriesError(
                "align_many requires sample grids that coincide on the overlap"
            )
    start, end = common_window(series)
    out = []
    for s in series:
        # Number of whole steps to drop from the front of this series.
        skip = int(round((start - s.start) / step))
        # Number of samples that fit in the common window.
        count = int(round((end - start) / step))
        values = s.values[skip: skip + count]
        if values.size == 0:
            raise TimeSeriesError("alignment produced an empty series")
        out.append(TimeSeries(start, step, values))
    return out


__all__ = ["common_window", "align_pair", "align_many"]
