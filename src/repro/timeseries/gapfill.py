"""Filling missing samples (NaN gaps) in measured series.

Real measurement campaigns drop readings — IPMI polls time out, PDU exports
have holes, facility meters are read manually.  The paper notes that "data
is either incomplete or of variable quality"; the simulated instruments in
:mod:`repro.power.instruments` reproduce this by dropping a configurable
fraction of samples, and these helpers implement the standard repair
strategies so their effect on the energy totals can be studied.
"""

from __future__ import annotations

import numpy as np

from repro.timeseries.series import TimeSeries, TimeSeriesError


def count_gaps(series: TimeSeries) -> int:
    """Number of missing (NaN) samples in the series."""
    return int(np.isnan(series.values).sum())


def fill_value(series: TimeSeries, value: float) -> TimeSeries:
    """Replace every missing sample with a constant ``value``."""
    values = series.values.copy()
    values[np.isnan(values)] = float(value)
    return TimeSeries(series.start, series.step, values)


def fill_forward(series: TimeSeries) -> TimeSeries:
    """Replace each missing sample with the most recent valid sample.

    Leading gaps (before the first valid sample) are filled backwards from
    the first valid sample.  Raises if the series contains no valid samples
    at all.
    """
    values = series.values.copy()
    valid = ~np.isnan(values)
    if not valid.any():
        raise TimeSeriesError("cannot forward-fill a series with no valid samples")
    # Index of the previous valid sample for every position.
    idx = np.where(valid, np.arange(len(values)), -1)
    idx = np.maximum.accumulate(idx)
    first_valid = int(np.argmax(valid))
    idx[idx < 0] = first_valid
    return TimeSeries(series.start, series.step, values[idx])


def fill_interpolate(series: TimeSeries) -> TimeSeries:
    """Linearly interpolate missing samples between the neighbouring valid ones.

    Gaps at the edges are extended flat from the nearest valid sample.
    Raises if the series contains no valid samples at all.
    """
    values = series.values.copy()
    valid = ~np.isnan(values)
    if not valid.any():
        raise TimeSeriesError("cannot interpolate a series with no valid samples")
    if valid.all():
        return series.copy()
    x = np.arange(len(values), dtype=np.float64)
    filled = np.interp(x, x[valid], values[valid])
    return TimeSeries(series.start, series.step, filled)


__all__ = ["count_gaps", "fill_value", "fill_forward", "fill_interpolate"]
