"""Time-series substrate used by the power and grid subsystems.

The measurement campaign of the paper produces sampled data at very different
cadences — half-hourly grid carbon intensity, minute-level PDU readings,
second-level IPMI/Turbostat samples, and single cumulative readings from
facility meters.  All of it ultimately has to be reduced to "energy used over
the snapshot period" and "carbon intensity applicable to that energy", so
this package provides a small, numpy-backed regular time-series type plus
the operations the pipeline needs:

* :class:`~repro.timeseries.series.TimeSeries` — a regularly sampled series
  (start time, fixed step, float values).
* :mod:`~repro.timeseries.resample` — down/up-sampling between cadences.
* :mod:`~repro.timeseries.align` — trimming and aligning series that cover
  different windows so that they can be combined.
* :mod:`~repro.timeseries.gapfill` — filling missing samples (NaNs), which
  happens when instruments drop readings during the campaign.
* :mod:`~repro.timeseries.integrate` — integrating power series into energy
  and computing time-weighted averages.
"""

from repro.timeseries.series import TimeSeries, TimeSeriesError, steps_equal
from repro.timeseries.resample import resample_mean, resample_sum, upsample_repeat
from repro.timeseries.align import align_pair, align_many, common_window
from repro.timeseries.gapfill import (
    count_gaps,
    fill_forward,
    fill_interpolate,
    fill_value,
)
from repro.timeseries.integrate import (
    energy_kwh_from_power_w,
    integrate_trapezoid,
    time_weighted_mean,
)

__all__ = [
    "TimeSeries",
    "TimeSeriesError",
    "steps_equal",
    "resample_mean",
    "resample_sum",
    "upsample_repeat",
    "align_pair",
    "align_many",
    "common_window",
    "count_gaps",
    "fill_forward",
    "fill_interpolate",
    "fill_value",
    "energy_kwh_from_power_w",
    "integrate_trapezoid",
    "time_weighted_mean",
]
