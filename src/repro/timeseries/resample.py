"""Resampling between sampling cadences.

The measurement instruments in :mod:`repro.power` sample at different rates
(Turbostat every few seconds, IPMI every tens of seconds, PDUs every minute,
facility meters every fifteen minutes); the grid intensity series is
half-hourly.  To combine them, series are resampled onto a common cadence.

Down-sampling is exact only when the target step is an integer multiple of
the source step — which is how the simulator chooses its cadences — so the
functions here enforce that and fail loudly rather than silently
interpolating.
"""

from __future__ import annotations

import numpy as np

from repro.timeseries.series import TimeSeries, TimeSeriesError, steps_equal


def _factor(series: TimeSeries, new_step: float) -> int:
    """Validate that ``new_step`` is an integer multiple of the series step."""
    new_step = float(new_step)
    if new_step <= 0:
        raise TimeSeriesError("new_step must be positive")
    if steps_equal(series.step, new_step):
        return 1
    ratio = new_step / series.step
    factor = int(round(ratio))
    if factor < 1 or not np.isclose(ratio, factor):
        raise TimeSeriesError(
            f"new step {new_step} is not an integer multiple of the "
            f"current step {series.step}"
        )
    return factor


def resample_mean(series: TimeSeries, new_step: float) -> TimeSeries:
    """Down-sample by averaging blocks of samples.

    Appropriate for *rate*-like series (power in watts, intensity in
    gCO2/kWh): the average of the finer samples over each coarse interval is
    the value a coarser instrument would have reported.

    A trailing partial block (fewer than ``factor`` samples) is averaged over
    the samples it does contain.
    """
    factor = _factor(series, new_step)
    if factor == 1:
        return series.copy()
    values = series.values
    n_full = len(values) // factor
    blocks = []
    if n_full:
        trimmed = values[: n_full * factor].reshape(n_full, factor)
        blocks.append(np.nanmean(trimmed, axis=1))
    remainder = values[n_full * factor:]
    if remainder.size:
        blocks.append(np.array([np.nanmean(remainder)]))
    out = np.concatenate(blocks) if blocks else np.array([np.nan])
    return TimeSeries(series.start, new_step, out)


def resample_sum(series: TimeSeries, new_step: float) -> TimeSeries:
    """Down-sample by summing blocks of samples.

    Appropriate for *amount*-like series (energy per interval in kWh,
    carbon per interval in grams): amounts add across the finer intervals.
    """
    factor = _factor(series, new_step)
    if factor == 1:
        return series.copy()
    values = series.values
    n_full = len(values) // factor
    blocks = []
    if n_full:
        trimmed = values[: n_full * factor].reshape(n_full, factor)
        blocks.append(np.nansum(trimmed, axis=1))
    remainder = values[n_full * factor:]
    if remainder.size:
        blocks.append(np.array([np.nansum(remainder)]))
    out = np.concatenate(blocks) if blocks else np.array([0.0])
    return TimeSeries(series.start, new_step, out)


def upsample_repeat(series: TimeSeries, new_step: float) -> TimeSeries:
    """Up-sample by repeating each sample (piecewise-constant interpretation).

    Used to bring the half-hourly grid intensity onto the cadence of a finer
    power trace before computing time-resolved carbon.  ``new_step`` must
    divide the current step evenly.
    """
    new_step = float(new_step)
    if new_step <= 0:
        raise TimeSeriesError("new_step must be positive")
    if steps_equal(series.step, new_step):
        return series.copy()
    ratio = series.step / new_step
    factor = int(round(ratio))
    if factor < 1 or not np.isclose(ratio, factor):
        raise TimeSeriesError(
            f"current step {series.step} is not an integer multiple of the "
            f"new step {new_step}"
        )
    values = np.repeat(series.values, factor)
    return TimeSeries(series.start, new_step, values)


__all__ = ["resample_mean", "resample_sum", "upsample_repeat"]
