"""A regularly sampled time series backed by a numpy array.

The library deliberately uses *regular* series (fixed sampling step) because
every producer in the reproduction — the workload simulator, the power
instruments and the grid-intensity model — samples on a fixed cadence, and
regular series make resampling, alignment and integration both simpler and
much faster (pure vectorised numpy, no per-sample Python loops).

Timestamps are plain floats: seconds since an arbitrary campaign epoch
(the start of the snapshot by convention).  Keeping time as float seconds
rather than datetimes keeps the hot paths free of object arrays; the
snapshot orchestration layer owns the mapping to calendar dates.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np


class TimeSeriesError(ValueError):
    """Raised for invalid time-series construction or incompatible operands."""


def steps_equal(step_a: float, step_b: float, rel_tol: float = 1e-9) -> bool:
    """Whether two sampling steps are equal up to float tolerance.

    The single definition of "same cadence" used across resampling and
    alignment: steps within ``rel_tol`` of the larger magnitude compare
    equal, so steps that drifted through float arithmetic (for example
    ``3600.0`` vs ``3600.0000000001`` from a division round-trip) are not
    treated as a resampling request.
    """
    return abs(step_a - step_b) <= rel_tol * max(abs(step_a), abs(step_b))


class TimeSeries:
    """A regularly sampled series of float values.

    Parameters
    ----------
    start:
        Timestamp of the first sample, in seconds since the campaign epoch.
    step:
        Sampling period in seconds; must be positive.
    values:
        Sample values. Stored as a float64 numpy array; a copy is taken so
        the series owns its data.

    Notes
    -----
    Values may contain NaN to represent missing samples (dropped readings);
    use :mod:`repro.timeseries.gapfill` before integrating.
    """

    __slots__ = ("_start", "_step", "_values")

    def __init__(self, start: float, step: float, values: Iterable[float]):
        step = float(step)
        if step <= 0:
            raise TimeSeriesError(f"step must be positive, got {step}")
        arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                         dtype=np.float64)
        if arr.ndim != 1:
            raise TimeSeriesError(f"values must be one-dimensional, got shape {arr.shape}")
        if arr.size == 0:
            raise TimeSeriesError("a TimeSeries must contain at least one sample")
        self._start = float(start)
        self._step = step
        self._values = arr.copy()

    # -- basic accessors -------------------------------------------------------

    @property
    def start(self) -> float:
        """Timestamp of the first sample (seconds since epoch)."""
        return self._start

    @property
    def step(self) -> float:
        """Sampling period in seconds."""
        return self._step

    @property
    def values(self) -> np.ndarray:
        """A read-only view of the sample values."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    @property
    def end(self) -> float:
        """Timestamp just after the last sample (exclusive end of coverage)."""
        return self._start + self._step * len(self._values)

    @property
    def duration(self) -> float:
        """Total covered duration in seconds."""
        return self._step * len(self._values)

    @property
    def times(self) -> np.ndarray:
        """Timestamps of each sample (seconds since epoch)."""
        return self._start + self._step * np.arange(len(self._values), dtype=np.float64)

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self):
        return iter(self._values)

    def __getitem__(self, index):
        return self._values[index]

    def __repr__(self) -> str:
        return (
            f"TimeSeries(start={self._start}, step={self._step}, "
            f"n={len(self._values)}, mean={np.nanmean(self._values):.4g})"
        )

    # -- constructors ----------------------------------------------------------

    @classmethod
    def constant(cls, start: float, step: float, value: float, n: int) -> "TimeSeries":
        """A series of ``n`` identical samples."""
        if n <= 0:
            raise TimeSeriesError("n must be positive")
        return cls(start, step, np.full(n, float(value)))

    @classmethod
    def zeros(cls, start: float, step: float, n: int) -> "TimeSeries":
        """A series of ``n`` zero samples."""
        return cls.constant(start, step, 0.0, n)

    @classmethod
    def from_function(
        cls, start: float, step: float, n: int, fn: Callable[[np.ndarray], np.ndarray]
    ) -> "TimeSeries":
        """Sample ``fn`` (vectorised over timestamps) on a regular grid."""
        if n <= 0:
            raise TimeSeriesError("n must be positive")
        times = start + step * np.arange(n, dtype=np.float64)
        values = np.asarray(fn(times), dtype=np.float64)
        if values.shape != times.shape:
            raise TimeSeriesError(
                "from_function: fn must return an array of the same shape as its input"
            )
        return cls(start, step, values)

    # -- statistics ------------------------------------------------------------

    def mean(self) -> float:
        """Arithmetic mean of the samples, ignoring NaN gaps."""
        return float(np.nanmean(self._values))

    def total(self) -> float:
        """Sum of the samples, ignoring NaN gaps."""
        return float(np.nansum(self._values))

    def minimum(self) -> float:
        """Minimum sample, ignoring NaN gaps."""
        return float(np.nanmin(self._values))

    def maximum(self) -> float:
        """Maximum sample, ignoring NaN gaps."""
        return float(np.nanmax(self._values))

    def std(self) -> float:
        """Standard deviation of the samples, ignoring NaN gaps."""
        return float(np.nanstd(self._values))

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of the samples, ignoring NaN gaps."""
        return float(np.nanpercentile(self._values, q))

    def has_gaps(self) -> bool:
        """True if any sample is NaN."""
        return bool(np.isnan(self._values).any())

    # -- elementwise arithmetic ---------------------------------------------

    def _check_compatible(self, other: "TimeSeries", op: str) -> None:
        if not isinstance(other, TimeSeries):
            raise TimeSeriesError(f"cannot {op} TimeSeries and {type(other).__name__}")
        if len(other) != len(self):
            raise TimeSeriesError(
                f"cannot {op} series of different lengths ({len(self)} vs {len(other)})"
            )
        if not np.isclose(other._step, self._step):
            raise TimeSeriesError(
                f"cannot {op} series with different steps ({self._step} vs {other._step})"
            )
        if not np.isclose(other._start, self._start):
            raise TimeSeriesError(
                f"cannot {op} series with different starts "
                f"({self._start} vs {other._start}); align them first"
            )

    def __add__(self, other):
        if isinstance(other, (int, float)):
            return TimeSeries(self._start, self._step, self._values + other)
        self._check_compatible(other, "add")
        return TimeSeries(self._start, self._step, self._values + other._values)

    __radd__ = __add__

    def __sub__(self, other):
        if isinstance(other, (int, float)):
            return TimeSeries(self._start, self._step, self._values - other)
        self._check_compatible(other, "subtract")
        return TimeSeries(self._start, self._step, self._values - other._values)

    def __mul__(self, other):
        if isinstance(other, (int, float)):
            return TimeSeries(self._start, self._step, self._values * other)
        self._check_compatible(other, "multiply")
        return TimeSeries(self._start, self._step, self._values * other._values)

    __rmul__ = __mul__

    def __truediv__(self, other):
        if isinstance(other, (int, float)):
            return TimeSeries(self._start, self._step, self._values / other)
        self._check_compatible(other, "divide")
        return TimeSeries(self._start, self._step, self._values / other._values)

    def map(self, fn: Callable[[np.ndarray], np.ndarray]) -> "TimeSeries":
        """Apply a vectorised function to the values, preserving the grid."""
        values = np.asarray(fn(self._values), dtype=np.float64)
        if values.shape != self._values.shape:
            raise TimeSeriesError("map: fn must preserve the number of samples")
        return TimeSeries(self._start, self._step, values)

    def clip(self, lower: float | None = None, upper: float | None = None) -> "TimeSeries":
        """Clamp values into ``[lower, upper]``."""
        return TimeSeries(self._start, self._step, np.clip(self._values, lower, upper))

    # -- slicing in time ------------------------------------------------------

    def slice_time(self, t0: float, t1: float) -> "TimeSeries":
        """Return the sub-series whose sample timestamps fall in ``[t0, t1)``."""
        if t1 <= t0:
            raise TimeSeriesError("slice_time requires t1 > t0")
        times = self.times
        mask = (times >= t0) & (times < t1)
        if not mask.any():
            raise TimeSeriesError(
                f"slice [{t0}, {t1}) does not overlap series covering "
                f"[{self._start}, {self.end})"
            )
        idx = np.nonzero(mask)[0]
        return TimeSeries(times[idx[0]], self._step, self._values[idx[0]: idx[-1] + 1])

    def value_at(self, t: float) -> float:
        """The sample covering time ``t`` (piecewise-constant interpretation)."""
        if t < self._start or t >= self.end:
            raise TimeSeriesError(
                f"time {t} outside series coverage [{self._start}, {self.end})"
            )
        index = int((t - self._start) // self._step)
        index = min(index, len(self._values) - 1)
        return float(self._values[index])

    # -- combination helpers ----------------------------------------------------

    @staticmethod
    def sum_many(series: Sequence["TimeSeries"]) -> "TimeSeries":
        """Element-wise sum of several compatible series.

        Used for aggregating node power traces into rack/site traces.
        """
        if not series:
            raise TimeSeriesError("sum_many requires at least one series")
        head = series[0]
        acc = np.array(head._values, dtype=np.float64)
        for other in series[1:]:
            head._check_compatible(other, "sum")
            acc += other._values
        return TimeSeries(head._start, head._step, acc)

    def copy(self) -> "TimeSeries":
        """A deep copy of the series."""
        return TimeSeries(self._start, self._step, self._values)


__all__ = ["TimeSeries", "TimeSeriesError", "steps_equal"]
