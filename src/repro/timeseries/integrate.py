"""Integrating power series into energy and time-weighted averaging.

The central quantity of the paper's active-carbon term is the energy ``E``
used by each item over the snapshot period (equation 3).  The instruments
report *power* samples, so the pipeline integrates power over time.  Two
schemes are provided:

* rectangle rule (each sample holds for one step) — matches how PDU and
  facility meters accumulate energy internally;
* trapezoid rule — slightly more accurate for smooth, finely sampled
  in-band measurements such as Turbostat.

Both agree to well under a percent at the cadences used by the simulator;
the difference is one of the things the reconciliation ablation bench looks
at.
"""

from __future__ import annotations

import numpy as np

from repro.timeseries.series import TimeSeries, TimeSeriesError
from repro.units.constants import JOULES_PER_KWH


def energy_kwh_from_power_w(series: TimeSeries) -> float:
    """Integrate a power series (watts) into kWh using the rectangle rule.

    NaN samples are treated as zero contribution; repair gaps first with
    :mod:`repro.timeseries.gapfill` if that is not the intended semantics.
    """
    values = series.values
    joules = np.nansum(values) * series.step
    return float(joules / JOULES_PER_KWH)


def integrate_trapezoid(series: TimeSeries) -> float:
    """Integrate a power series (watts) into kWh using the trapezoid rule.

    The series must not contain gaps (NaN) because interpolation across a
    gap silently fabricates energy; call a gap-fill routine first.
    """
    values = series.values
    if np.isnan(values).any():
        raise TimeSeriesError(
            "integrate_trapezoid requires a gap-free series; fill gaps first"
        )
    if len(values) == 1:
        joules = float(values[0]) * series.step
    else:
        joules = float(np.trapezoid(values, dx=series.step))
        # The trapezoid over n samples covers (n-1) steps; account for the
        # final sample holding for one more step so the covered duration
        # matches the rectangle rule and the meter's own accumulation.
        joules += float(values[-1]) * series.step
    return joules / JOULES_PER_KWH


def time_weighted_mean(series: TimeSeries) -> float:
    """The time-weighted mean of a regular series (equals the plain mean).

    Provided for symmetry with irregular-series code paths in other tools;
    NaN gaps are excluded from the average.
    """
    return series.mean()


__all__ = ["energy_kwh_from_power_w", "integrate_trapezoid", "time_weighted_mean"]
