"""Quantile-native ensemble results.

An :class:`EnsembleResult` keeps the full joint sample of the carbon
metrics (active, embodied, total) rather than a fixed summary, so callers
ask distributional questions directly: arbitrary quantiles, exceedance and
crossover probabilities (``P(embodied > active)`` — the balance the
paper's summary discusses qualitatively), and flat rows for the table /
JSON / CSV renderers in :mod:`repro.reporting.uncertainty`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.io.csvio import write_rows_csv
from repro.io.jsonio import PathLike, write_json

from repro.uncertainty.sampling import SampleMatrix
from repro.uncertainty.spec import UncertainSpec

#: The default percentile band (5/25/50/75/95) reported everywhere.
DEFAULT_PROBS: Tuple[float, ...] = (0.05, 0.25, 0.50, 0.75, 0.95)

#: The carbon metrics an ensemble distributes.
METRICS: Tuple[str, ...] = ("active_kg", "embodied_kg", "total_kg",
                            "embodied_fraction")


def quantile_label(prob: float) -> str:
    """``0.05 -> "p05"``, ``0.5 -> "p50"``, ``0.975 -> "p97.5"``."""
    if not 0.0 <= prob <= 1.0:
        raise ValueError("a quantile probability must be in [0, 1]")
    percent = 100.0 * prob
    if abs(percent - round(percent)) < 1e-9:
        return f"p{int(round(percent)):02d}"
    return f"p{percent:g}"


@dataclass(frozen=True)
class EnsembleResult:
    """The joint outcome distribution of one ensemble run.

    Attributes
    ----------
    spec:
        The uncertain spec that was run (base spec + distributions).
    samples:
        The drawn input sample matrix (one column per distributed field).
    active_kg / embodied_kg / total_kg:
        Per-sample outcomes, aligned with the sample matrix rows.
    seed:
        The ensemble seed (the run is a pure function of spec, n, seed).
    method:
        ``"vectorized"`` (columnar analysis pass) or ``"oracle"``
        (per-sample Assessment loop).
    """

    spec: UncertainSpec
    samples: SampleMatrix
    active_kg: np.ndarray
    embodied_kg: np.ndarray
    total_kg: np.ndarray
    seed: int
    method: str

    def __post_init__(self):
        n = self.samples.n_samples
        for name in ("active_kg", "embodied_kg", "total_kg"):
            array = np.asarray(getattr(self, name), dtype=np.float64)
            if array.shape != (n,):
                raise ValueError(
                    f"{name} must have shape ({n},), got {array.shape}")
            object.__setattr__(self, name, array)

    # -- basic views ---------------------------------------------------------------

    @property
    def n_samples(self) -> int:
        return self.samples.n_samples

    @property
    def fields(self) -> Tuple[str, ...]:
        """The distributed input fields, in sampling order."""
        return self.samples.fields

    @property
    def embodied_fraction(self) -> np.ndarray:
        """Per-sample embodied share of the total."""
        return self.embodied_kg / self.total_kg

    def metric(self, name: str) -> np.ndarray:
        """One of :data:`METRICS` as the per-sample array."""
        if name not in METRICS:
            raise KeyError(
                f"unknown metric {name!r}; expected one of {', '.join(METRICS)}")
        return getattr(self, name) if name != "embodied_fraction" \
            else self.embodied_fraction

    # -- quantiles -----------------------------------------------------------------

    def quantile(self, prob, metric: str = "total_kg"):
        """The ``prob`` quantile (scalar or array of probabilities)."""
        values = np.quantile(self.metric(metric), prob)
        return float(values) if np.ndim(values) == 0 else values

    def quantiles(
        self, metric: str = "total_kg",
        probs: Sequence[float] = DEFAULT_PROBS,
    ) -> Dict[str, float]:
        """Labelled quantiles, e.g. ``{"p05": ..., "p25": ..., ...}``."""
        values = np.quantile(self.metric(metric), list(probs))
        return {quantile_label(p): float(v) for p, v in zip(probs, values)}

    def mean(self, metric: str = "total_kg") -> float:
        return float(self.metric(metric).mean())

    def std(self, metric: str = "total_kg") -> float:
        return float(self.metric(metric).std())

    # -- probabilities -------------------------------------------------------------

    @property
    def probability_embodied_exceeds_active(self) -> float:
        """P(embodied > active): the crossover the paper anticipates."""
        return float((self.embodied_kg > self.active_kg).mean())

    def exceedance_probability(
        self, threshold: float, metric: str = "total_kg",
    ) -> float:
        """P(metric > threshold) under the input distributions."""
        return float((self.metric(metric) > threshold).mean())

    # -- flat rows and serialisation -----------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """One flat row of the ensemble configuration and headline stats."""
        row: Dict[str, Any] = {
            "samples": self.n_samples,
            "seed": self.seed,
            "method": self.method,
            "fields": ",".join(self.fields),
            "total_kg_mean": self.mean("total_kg"),
            "total_kg_std": self.std("total_kg"),
            "active_kg_mean": self.mean("active_kg"),
            "embodied_kg_mean": self.mean("embodied_kg"),
            "embodied_fraction_mean": self.mean("embodied_fraction"),
            "probability_embodied_exceeds_active":
                self.probability_embodied_exceeds_active,
        }
        for label, value in self.quantiles("total_kg").items():
            row[f"total_kg_{label}"] = value
        return row

    def quantile_rows(
        self, probs: Sequence[float] = DEFAULT_PROBS,
    ) -> List[Dict[str, Any]]:
        """One row per quantile across every metric (the CSV/table form)."""
        rows = []
        per_metric = {
            metric: np.quantile(self.metric(metric), list(probs))
            for metric in METRICS
        }
        for index, prob in enumerate(probs):
            row: Dict[str, Any] = {"quantile": quantile_label(prob),
                                   "probability": float(prob)}
            for metric in METRICS:
                row[metric] = float(per_metric[metric][index])
            rows.append(row)
        return rows

    def as_dict(self) -> Dict[str, Any]:
        """The result as a JSON-serialisable dictionary (no raw samples)."""
        return {
            "spec": self.spec.to_dict(),
            "summary": self.summary(),
            "quantiles": {
                metric: self.quantiles(metric) for metric in METRICS
            },
        }

    def to_json(self, path: PathLike) -> None:
        write_json(path, self.as_dict())

    def to_csv(self, path: PathLike) -> None:
        write_rows_csv(path, self.quantile_rows())


__all__ = ["DEFAULT_PROBS", "METRICS", "EnsembleResult", "quantile_label"]
