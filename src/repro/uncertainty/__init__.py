"""The vectorized uncertainty engine.

This package turns the paper's handful of scenario corners (Tables 3-4)
into first-class probabilistic sweeps over *any* numeric spec parameter:

* :mod:`~repro.uncertainty.distributions` — the string-keyed distribution
  registry (triangular, uniform, normal, lognormal, discrete, empirical)
  and their JSON-tagged dictionary forms;
* :mod:`~repro.uncertainty.spec` — :class:`UncertainSpec`: an
  :class:`~repro.api.spec.AssessmentSpec` whose samplable fields may hold
  distribution objects, round-tripping through the same flat JSON file;
* :mod:`~repro.uncertainty.ensemble` — :class:`EnsembleRunner`: seeded
  n x k sampling pushed through the analysis stage in one columnar pass
  over a substrate simulated exactly once (with the per-sample
  ``Assessment`` loop retained as the cross-validation oracle);
* :mod:`~repro.uncertainty.result` — quantile-native
  :class:`EnsembleResult` (percentile bands, crossover probabilities,
  exceedance queries);
* :mod:`~repro.uncertainty.temporal` — :class:`TemporalEnsembleRunner`:
  intensity-trace scale/shift uncertainty rendered as emission bands over
  time.

Quick start::

    from repro.api import default_spec
    from repro.uncertainty import EnsembleRunner, Triangular, Uniform

    runner = EnsembleRunner(default_spec(node_scale=0.05), {
        "carbon_intensity_g_per_kwh": Triangular(50, 175, 300),
        "pue": Triangular(1.1, 1.3, 1.5),
        "per_server_kgco2": Uniform(400, 1100),
    })
    result = runner.run(n_samples=10_000, seed=0)
    print(result.quantiles("total_kg"))
    print(result.probability_embodied_exceeds_active)
"""

from repro.uncertainty.distributions import (
    DISTRIBUTIONS,
    Discrete,
    Distribution,
    Empirical,
    LogNormal,
    Normal,
    Triangular,
    Uniform,
    distribution_from_dict,
    paper_default_distributions,
    register_distribution,
)
from repro.uncertainty.sampling import SampleMatrix, draw_samples
from repro.uncertainty.spec import (
    INTENSITY_TRACE_FIELDS,
    TEMPORAL_UNCERTAIN_FIELDS,
    UNCERTAIN_FIELDS,
    UncertainSpec,
)
from repro.uncertainty.result import DEFAULT_PROBS, METRICS, EnsembleResult
from repro.uncertainty.ensemble import EnsembleRunner
from repro.uncertainty.temporal import (
    TemporalEnsembleResult,
    TemporalEnsembleRunner,
)

__all__ = [
    # distributions
    "DISTRIBUTIONS",
    "Distribution",
    "Triangular",
    "Uniform",
    "Normal",
    "LogNormal",
    "Discrete",
    "Empirical",
    "distribution_from_dict",
    "paper_default_distributions",
    "register_distribution",
    # sampling
    "SampleMatrix",
    "draw_samples",
    # spec
    "UncertainSpec",
    "UNCERTAIN_FIELDS",
    "INTENSITY_TRACE_FIELDS",
    "TEMPORAL_UNCERTAIN_FIELDS",
    # results and runners
    "DEFAULT_PROBS",
    "METRICS",
    "EnsembleResult",
    "EnsembleRunner",
    "TemporalEnsembleResult",
    "TemporalEnsembleRunner",
]
