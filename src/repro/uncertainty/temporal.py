"""Time-resolved ensembles: emission *bands* over the window.

Where the static :class:`~repro.uncertainty.ensemble.EnsembleRunner`
distributes period totals, :class:`TemporalEnsembleRunner` distributes the
whole emission *trace*: the substrate is simulated once, the power and
intensity traces are aligned once (through
:meth:`~repro.api.temporal.TemporalAssessment.aligned_traces`), and every
sampled scenario becomes one row of an ``n_samples x n_intervals`` carbon
matrix built in a handful of broadcast operations.  Per-interval quantiles
of that matrix are the uncertainty bands a capacity planner actually wants
("with 90% confidence, tonight's batch window emits between X and Y").

Sampled fields and how they enter the matrix:

* ``intensity_scale`` — multiplicative error on the whole intensity trace
  (is the feed biased high/low?): one outer product.
* ``intensity_shift_hours`` — timing error, circularly shifting the
  intensity trace (snapped to whole grid steps): one gather.
* ``carbon_intensity_g_per_kwh`` — a flat per-sample intensity replacing
  the trace entirely.
* ``pue`` — scales each sample's power row.
* ``shift_hours`` / ``defer_fraction`` — carbon-aware workload transforms;
  these reshape the power trace per sample (cheap
  :func:`~repro.temporal.scenarios.time_shift` /
  :func:`~repro.temporal.scenarios.defer_load` calls over the one aligned
  trace — still no re-simulation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.api.spec import AssessmentSpec
from repro.api.substrates import SubstrateCache, shared_substrates
from repro.api.temporal import TemporalAssessment
from repro.io.csvio import write_rows_csv
from repro.io.jsonio import PathLike, write_json
from repro.temporal.scenarios import transformed_power
from repro.timeseries.series import TimeSeries
from repro.units.constants import JOULES_PER_KWH

from repro.uncertainty.distributions import Distribution
from repro.uncertainty.result import DEFAULT_PROBS, quantile_label
from repro.uncertainty.sampling import SampleMatrix, draw_samples
from repro.uncertainty.spec import TEMPORAL_UNCERTAIN_FIELDS, UncertainSpec


@dataclass(frozen=True)
class TemporalEnsembleResult:
    """The distribution of the emission trace across sampled scenarios.

    ``carbon_kg`` is the full ``n_samples x n_intervals`` matrix (kg per
    interval); everything else is a view over it.
    """

    spec: UncertainSpec
    samples: SampleMatrix
    start: float
    step: float
    carbon_kg: np.ndarray
    seed: int

    def __post_init__(self):
        matrix = np.asarray(self.carbon_kg, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != self.samples.n_samples:
            raise ValueError(
                f"carbon_kg must have shape (n_samples, n_intervals), got "
                f"{matrix.shape} for {self.samples.n_samples} samples")
        object.__setattr__(self, "carbon_kg", matrix)

    # -- basic views ---------------------------------------------------------------

    @property
    def n_samples(self) -> int:
        return self.samples.n_samples

    @property
    def n_intervals(self) -> int:
        return self.carbon_kg.shape[1]

    @property
    def times_s(self) -> np.ndarray:
        return self.start + self.step * np.arange(self.n_intervals)

    @property
    def total_kg(self) -> np.ndarray:
        """Per-sample window totals (active term only)."""
        return self.carbon_kg.sum(axis=1)

    # -- bands ---------------------------------------------------------------------

    def band(self, prob: float) -> np.ndarray:
        """The per-interval ``prob`` quantile of the emission rate (kg)."""
        return np.quantile(self.carbon_kg, prob, axis=0)

    def cumulative_band(self, prob: float) -> np.ndarray:
        """The per-interval quantile of *cumulative* emissions (kg)."""
        return np.quantile(np.cumsum(self.carbon_kg, axis=1), prob, axis=0)

    def band_rows(
        self, probs: Sequence[float] = (0.05, 0.50, 0.95),
    ) -> List[Dict[str, Any]]:
        """One row per interval with the requested quantile band columns."""
        bands = {quantile_label(p): self.band(p) for p in probs}
        mean = self.carbon_kg.mean(axis=0)
        rows = []
        for index, t in enumerate(self.times_s):
            row: Dict[str, Any] = {
                "t_hours": float(t) / 3600.0,
                "mean_kg": float(mean[index]),
            }
            for label, values in bands.items():
                row[f"{label}_kg"] = float(values[index])
            rows.append(row)
        return rows

    # -- totals --------------------------------------------------------------------

    def quantiles(
        self, probs: Sequence[float] = DEFAULT_PROBS,
    ) -> Dict[str, float]:
        """Labelled quantiles of the per-sample window totals."""
        values = np.quantile(self.total_kg, list(probs))
        return {quantile_label(p): float(v) for p, v in zip(probs, values)}

    def summary(self) -> Dict[str, Any]:
        row: Dict[str, Any] = {
            "samples": self.n_samples,
            "seed": self.seed,
            "fields": ",".join(self.samples.fields),
            "intervals": self.n_intervals,
            "resolution_s": self.step,
            "active_kg_mean": float(self.total_kg.mean()),
            "active_kg_std": float(self.total_kg.std()),
        }
        for label, value in self.quantiles().items():
            row[f"active_kg_{label}"] = value
        return row

    def as_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "summary": self.summary(),
            "bands": self.band_rows(),
        }

    def to_json(self, path: PathLike) -> None:
        write_json(path, self.as_dict())

    def to_csv(self, path: PathLike) -> None:
        write_rows_csv(path, self.band_rows())


class TemporalEnsembleRunner:
    """Run sampled time-resolved scenarios against one aligned trace pair.

    Accepts an :class:`UncertainSpec` (or a base spec plus distributions)
    whose distributed fields all shape emission over time
    (:data:`~repro.uncertainty.spec.TEMPORAL_UNCERTAIN_FIELDS`).
    """

    def __init__(
        self,
        spec: Union[UncertainSpec, AssessmentSpec, None] = None,
        distributions: Optional[Mapping[str, Distribution]] = None,
        *,
        substrates: Optional[SubstrateCache] = None,
        catalog=None,
    ):
        from repro.api.assessment import _coerce_catalog

        self._recorder = _coerce_catalog(catalog)
        self._spec = UncertainSpec.coerce(spec, distributions)
        bad = [name for name in self._spec.fields
               if name not in TEMPORAL_UNCERTAIN_FIELDS]
        if bad:
            raise ValueError(
                f"fields {', '.join(bad)} do not shape emission over time; "
                f"temporal ensembles accept "
                f"{', '.join(TEMPORAL_UNCERTAIN_FIELDS)} — use "
                "repro.uncertainty.EnsembleRunner for the rest")
        self._substrates = (substrates if substrates is not None
                            else shared_substrates())

    @property
    def spec(self) -> UncertainSpec:
        return self._spec

    @property
    def substrates(self) -> SubstrateCache:
        return self._substrates

    def draw(self, n_samples: int, seed) -> SampleMatrix:
        return draw_samples(self._spec.distributions, n_samples, seed)

    # -- running -------------------------------------------------------------------

    def run(self, n_samples: int = 256, seed: int = 0) -> TemporalEnsembleResult:
        """Build the emission-band matrix for ``n_samples`` scenarios.

        The substrate is simulated (or served from cache) exactly once and
        the traces aligned exactly once; memory is ``n_samples x
        n_intervals`` float64, so size the ensemble accordingly.  With
        ``catalog=`` configured, a previously catalogued (spec, n, seed)
        draw is served from the catalog with zero simulation.
        """
        if self._recorder is not None:
            return self._recorder.run_temporal_ensemble(
                self, n_samples=n_samples, seed=seed)
        return self.run_live(n_samples=n_samples, seed=seed)

    def run_live(self, n_samples: int = 256,
                 seed: int = 0) -> TemporalEnsembleResult:
        """Build the emission-band matrix unconditionally (never served)."""
        samples = self.draw(n_samples, seed)
        spec = self._spec.base
        power, intensity = TemporalAssessment(
            spec, substrates=self._substrates).aligned_traces()
        step = power.step
        n = samples.n_samples

        power_matrix = self._power_matrix(samples, power, intensity)
        intensity_matrix = self._intensity_matrix(
            samples, intensity.values, n, step)
        if "pue" in samples:
            pue = samples.column("pue")[:, None]
        else:
            pue = spec.pue
        energy_kwh = power_matrix * pue * (step / JOULES_PER_KWH)
        carbon_kg = energy_kwh * intensity_matrix / 1000.0
        return TemporalEnsembleResult(
            spec=self._spec,
            samples=samples,
            start=power.start,
            step=step,
            carbon_kg=carbon_kg,
            seed=int(seed) if not isinstance(seed, np.random.Generator) else -1,
        )

    # -- matrix assembly -----------------------------------------------------------

    def _power_matrix(self, samples: SampleMatrix, power: TimeSeries,
                      intensity: TimeSeries) -> np.ndarray:
        """Per-sample power rows (watts); a single broadcast row when no
        workload transform is sampled."""
        spec = self._spec.base
        workload_sampled = ("shift_hours" in samples
                           or "defer_fraction" in samples)
        if not workload_sampled:
            base = transformed_power(
                power, intensity,
                self._snap_shift(spec.shift_hours * 3600.0, power.step)
                if spec.shift_hours else 0.0,
                spec.defer_fraction)
            return base.values[None, :]
        rows = np.empty((samples.n_samples, len(power)), dtype=np.float64)
        for index in range(samples.n_samples):
            row = samples.row(index)
            shift_h = row.get("shift_hours", spec.shift_hours)
            defer = row.get("defer_fraction", spec.defer_fraction)
            series = transformed_power(
                power, intensity,
                self._snap_shift(shift_h * 3600.0, power.step)
                if shift_h else 0.0,
                defer)
            rows[index] = series.values
        return rows

    def _intensity_matrix(self, samples: SampleMatrix,
                          base_values: np.ndarray, n: int,
                          step: float) -> np.ndarray:
        """Per-sample intensity rows (g/kWh) from the sampled trace errors."""
        if "carbon_intensity_g_per_kwh" in samples:
            matrix = np.broadcast_to(
                samples.column("carbon_intensity_g_per_kwh")[:, None],
                (n, len(base_values))).copy()
        else:
            matrix = np.broadcast_to(
                base_values[None, :], (n, len(base_values))).copy()
        if "intensity_shift_hours" in samples:
            steps = np.rint(
                samples.column("intensity_shift_hours") * 3600.0 / step
            ).astype(np.int64)
            index = (np.arange(matrix.shape[1])[None, :] - steps[:, None]) \
                % matrix.shape[1]
            matrix = np.take_along_axis(matrix, index, axis=1)
        if "intensity_scale" in samples:
            matrix = matrix * samples.column("intensity_scale")[:, None]
        return matrix

    @staticmethod
    def _snap_shift(shift_s: float, step: float) -> float:
        """Snap a sampled shift to a whole number of grid steps (the
        circular-shift transform requires integer steps)."""
        return round(shift_s / step) * step


__all__ = ["TemporalEnsembleResult", "TemporalEnsembleRunner"]
