"""Drawing the ensemble's sample matrix.

One seeded :class:`numpy.random.Generator` drives the whole ensemble: the
columns of the n x k sample matrix are drawn field by field, in *sorted
field-name order*, from a single stream.  Sorting makes the order
canonical — a mapping built in code and the same mapping reloaded from a
(sorted-keys) JSON spec file draw identical streams — so an ensemble is a
pure function of ``(distributions, n_samples, seed)`` regardless of how
the mapping was assembled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Tuple

import numpy as np

from repro.seeding import SeedLike, as_generator

from repro.uncertainty.distributions import Distribution


@dataclass(frozen=True)
class SampleMatrix:
    """The drawn joint samples: one float64 column per distributed field."""

    columns: Mapping[str, np.ndarray]
    n_samples: int

    def __post_init__(self):
        columns = dict(self.columns)
        if not columns:
            raise ValueError("a sample matrix needs at least one column")
        for name, column in columns.items():
            if column.shape != (self.n_samples,):
                raise ValueError(
                    f"column {name!r} has shape {column.shape}, "
                    f"expected ({self.n_samples},)")
        object.__setattr__(self, "columns", columns)

    @property
    def fields(self) -> Tuple[str, ...]:
        return tuple(self.columns)

    def __contains__(self, name: object) -> bool:
        return name in self.columns

    def __iter__(self) -> Iterator[str]:
        return iter(self.columns)

    def column(self, name: str) -> np.ndarray:
        """The sampled column for ``name``."""
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(
                f"no sampled column {name!r}; sampled fields: "
                f"{', '.join(self.columns)}") from None

    def row(self, index: int) -> Dict[str, float]:
        """Sample ``index`` as a field -> value mapping (the oracle's view)."""
        return {name: float(column[index])
                for name, column in self.columns.items()}


def draw_samples(
    distributions: Mapping[str, Distribution],
    n_samples: int,
    seed: SeedLike,
) -> SampleMatrix:
    """Draw the n x k sample matrix for the given field distributions.

    Columns are drawn in sorted field-name order from one generator seeded
    here, so the result is bit-reproducible per ``(distributions,
    n_samples, seed)`` and independent of the mapping's insertion order
    (which a JSON round trip would not preserve).
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    if not distributions:
        raise ValueError("draw_samples needs at least one distribution")
    rng = as_generator(seed)
    columns = {
        name: distributions[name].sample(n_samples, rng)
        for name in sorted(distributions)
    }
    return SampleMatrix(columns=columns, n_samples=int(n_samples))


__all__ = ["SampleMatrix", "draw_samples"]
