"""Distribution-aware assessment specs.

An :class:`UncertainSpec` is an :class:`~repro.api.spec.AssessmentSpec`
plus a mapping of field names to :class:`~repro.uncertainty.distributions.
Distribution` objects.  Its JSON form is *the same flat document* as a
plain spec — any samplable numeric field may simply hold a tagged
distribution object instead of a number::

    {
      "node_scale": 0.05,
      "carbon_intensity_g_per_kwh": {"dist": "triangular",
                                     "low": 50, "mode": 175, "high": 300},
      "pue": {"dist": "triangular", "low": 1.1, "mode": 1.3, "high": 1.5},
      "lifetime_years": {"dist": "discrete", "values": [3, 4, 5, 6, 7]}
    }

Which fields may carry a distribution is declared by the spec layer itself
(:data:`repro.api.spec.SAMPLABLE_FIELDS`), plus the two trace-uncertainty
fields that only exist probabilistically (:data:`INTENSITY_TRACE_FIELDS`):
``intensity_scale`` (multiplicative error on the whole intensity trace) and
``intensity_shift_hours`` (timing error, circularly shifting the trace).

The distributed field's *point* value in the base spec (the spec default,
or an explicit scalar given alongside) remains meaningful: it is the
baseline the sensitivity ranking holds fields at, and what a deterministic
run of the same document would use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from repro.api.spec import (
    AssessmentSpec,
    SAMPLABLE_FIELDS,
    TEMPORAL_SAMPLE_FIELDS,
    default_spec,
)
from repro.io.jsonio import PathLike, read_json, write_json

from repro.uncertainty.distributions import (
    DIST_KEY,
    Distribution,
    distribution_from_dict,
)

#: Uncertainty-only fields describing errors on the grid-intensity *trace*
#: (time-resolved engine only); they have no deterministic spec column.
INTENSITY_TRACE_FIELDS = ("intensity_scale", "intensity_shift_hours")

#: Baseline values of the trace-uncertainty fields (the "no error" point).
INTENSITY_TRACE_BASELINES = {"intensity_scale": 1.0, "intensity_shift_hours": 0.0}

#: Everything a distribution may be attached to.
UNCERTAIN_FIELDS = SAMPLABLE_FIELDS + INTENSITY_TRACE_FIELDS

#: Fields the *time-resolved* ensemble accepts: everything that shapes
#: emission over time.  The embodied knobs (per-server kg, lifetime) are
#: deliberately absent — embodied carbon is time-invariant, so sampling
#: them belongs to the static :class:`~repro.uncertainty.ensemble.
#: EnsembleRunner`.
TEMPORAL_UNCERTAIN_FIELDS = (
    ("carbon_intensity_g_per_kwh", "pue")
    + TEMPORAL_SAMPLE_FIELDS + INTENSITY_TRACE_FIELDS
)


def _looks_like_distribution(value: Any) -> bool:
    return isinstance(value, Mapping) and DIST_KEY in value


@dataclass(frozen=True)
class UncertainSpec:
    """A base spec plus the distributions replacing some of its fields.

    Attributes
    ----------
    base:
        The deterministic spec every sample starts from (distributed
        fields keep their point value here as the sensitivity baseline).
    distributions:
        Mapping of field name to distribution; normalised to sorted
        field-name order — the canonical sampling order, so a spec built
        in code and the same spec reloaded from JSON draw identical
        streams.
    """

    base: AssessmentSpec = field(default_factory=default_spec)
    distributions: Mapping[str, Distribution] = field(default_factory=dict)

    def __post_init__(self):
        items = []
        for name, dist in sorted(dict(self.distributions).items()):
            if name not in UNCERTAIN_FIELDS:
                raise ValueError(
                    f"field {name!r} cannot carry a distribution; "
                    f"samplable fields: {', '.join(UNCERTAIN_FIELDS)}")
            if not isinstance(dist, Distribution):
                raise TypeError(
                    f"distribution for {name!r} must be a Distribution, "
                    f"got {type(dist).__name__}")
            items.append((name, dist))
        if not items:
            raise ValueError(
                "an UncertainSpec needs at least one distribution; "
                "use a plain AssessmentSpec for deterministic runs")
        object.__setattr__(self, "distributions", dict(items))

    @property
    def fields(self) -> Tuple[str, ...]:
        """The distributed field names, in canonical (= sampling) order."""
        return tuple(self.distributions)

    def baseline_value(self, name: str) -> float:
        """The point value the sensitivity ranking holds ``name`` at."""
        if name in INTENSITY_TRACE_BASELINES:
            return INTENSITY_TRACE_BASELINES[name]
        value = getattr(self.base, name)
        if value is None:  # e.g. per_server_kgco2 with no override
            raise ValueError(
                f"field {name!r} has no baseline value in the base spec; "
                "give it a scalar alongside its distribution")
        return float(value)

    def replace(self, **changes: Any) -> "UncertainSpec":
        """A copy with base-spec fields replaced (validated)."""
        return UncertainSpec(base=self.base.replace(**changes),
                             distributions=self.distributions)

    @classmethod
    def coerce(
        cls,
        spec: Any = None,
        distributions: Any = None,
        *,
        default_distributions: Any = None,
    ) -> "UncertainSpec":
        """Normalise the runner constructors' ``(spec, distributions)``.

        Accepts an :class:`UncertainSpec` (``distributions`` must then be
        omitted) or a base :class:`AssessmentSpec`/``None`` plus a
        distribution mapping; ``default_distributions`` is a zero-argument
        factory used when the mapping is omitted (runners without a
        sensible default pass ``None`` and get a loud error instead).
        """
        if isinstance(spec, cls):
            if distributions is not None:
                raise ValueError(
                    "pass distributions inside the UncertainSpec, not both")
            return spec
        if distributions is None:
            if default_distributions is None:
                raise ValueError(
                    "this runner needs explicit distributions: pass a "
                    "field -> Distribution mapping or an UncertainSpec")
            distributions = default_distributions()
        return cls(base=spec if spec is not None else AssessmentSpec(),
                   distributions=distributions)

    # -- dict / JSON round-trip -----------------------------------------------------

    #: Reserved key inside a serialised distribution object carrying the
    #: base spec's point value for that field (so the flat document stays
    #: lossless: the distribution replaces the scalar column, the baseline
    #: preserves it).
    BASELINE_KEY = "baseline"

    def to_dict(self) -> Dict[str, Any]:
        """The flat document form: base spec with distribution objects
        overlaid on the distributed fields.

        Lossless: each overlaid distribution object carries the field's
        base point value under :data:`BASELINE_KEY` (when one exists), so
        :meth:`from_dict` restores the exact base spec — including the
        baselines the sensitivity ranking holds fields at.
        """
        data = self.base.to_dict()
        for name, dist in self.distributions.items():
            tagged = dist.to_dict()
            if name not in INTENSITY_TRACE_FIELDS:
                point = getattr(self.base, name)
                if point is not None:
                    tagged[self.BASELINE_KEY] = point
            data[name] = tagged
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "UncertainSpec":
        """Parse the flat document form (see the module docstring).

        Scalar fields go to the base :class:`AssessmentSpec` (unknown keys
        rejected loudly, as ever); tagged distribution objects are split
        out and resolved through the distribution registry, their
        :data:`BASELINE_KEY` restoring the base point value.
        """
        if not isinstance(data, Mapping):
            raise ValueError(f"an uncertain spec must be a JSON object, got {data!r}")
        scalars: Dict[str, Any] = {}
        distributions: Dict[str, Distribution] = {}
        for key, value in data.items():
            if _looks_like_distribution(value):
                if key not in UNCERTAIN_FIELDS:
                    raise ValueError(
                        f"field {key!r} cannot carry a distribution; "
                        f"samplable fields: {', '.join(UNCERTAIN_FIELDS)}")
                tagged = dict(value)
                baseline = tagged.pop(cls.BASELINE_KEY, None)
                if baseline is not None and key not in INTENSITY_TRACE_FIELDS:
                    scalars[key] = baseline
                distributions[key] = distribution_from_dict(tagged)
            elif key in INTENSITY_TRACE_FIELDS:
                raise ValueError(
                    f"field {key!r} is uncertainty-only: give it a "
                    f"distribution object, not a scalar")
            else:
                scalars[key] = value
        return cls(base=AssessmentSpec.from_dict(scalars),
                   distributions=distributions)

    def to_json(self, path: PathLike) -> None:
        """Write the flat document form to ``path`` as JSON."""
        write_json(path, self.to_dict())

    @classmethod
    def from_json(cls, path: PathLike) -> "UncertainSpec":
        """Load an uncertain spec from a JSON file."""
        data = read_json(path)
        if not isinstance(data, dict):
            raise ValueError(f"{path}: an uncertain spec must be a JSON object")
        return cls.from_dict(data)


__all__ = [
    "INTENSITY_TRACE_BASELINES",
    "INTENSITY_TRACE_FIELDS",
    "TEMPORAL_UNCERTAIN_FIELDS",
    "UNCERTAIN_FIELDS",
    "UncertainSpec",
]
