"""The ensemble execution engine: one substrate, n sampled scenarios.

:class:`EnsembleRunner` turns an :class:`~repro.uncertainty.spec.
UncertainSpec` into an :class:`~repro.uncertainty.result.EnsembleResult`
two ways:

* **vectorized** (the production path): the workload -> power substrate is
  simulated exactly once through the shared
  :class:`~repro.api.substrates.SubstrateCache`, after which the whole
  carbon model collapses to columnar arithmetic — the snapshot's measured
  energies (produced by contracting the affine
  :class:`~repro.power.fleet_power.FleetPowerModel` coefficients over the
  fleet utilisation matrix) are multiplied against the sampled PUE and
  intensity columns in one broadcast pass, and the amortised embodied term
  against the sampled lifetime / per-server columns in another.  10k
  scenarios cost one simulation plus a few array operations.
* **oracle** (the reference semantics): one
  :class:`~repro.api.assessment.Assessment` run per sample against the
  same substrate cache.  Kept for cross-validation — the uncertainty
  benchmark pins vectorized-vs-oracle quantile agreement at <= 1e-9
  relative and asserts the >= 20x speedup — and as the fallback for
  sampled fields the columnar pass cannot absorb (physical fields, which
  change the substrate, and non-linear amortisation policies).

Sampled *physical* fields (``node_scale``, ...) work through the oracle:
each **distinct** sampled value costs one simulation (deduplicated by the
substrate cache), so a discrete distribution over a handful of fleet
scales stays affordable while a continuous one is honestly expensive.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Union

import numpy as np

from repro.api.assessment import Assessment
from repro.api.spec import (
    ANALYSIS_SAMPLE_FIELDS,
    AssessmentSpec,
    TEMPORAL_SAMPLE_FIELDS,
)
from repro.api.substrates import SubstrateCache, shared_substrates

from repro.uncertainty.distributions import Distribution
from repro.uncertainty.result import EnsembleResult
from repro.uncertainty.sampling import SampleMatrix, draw_samples
from repro.uncertainty.spec import INTENSITY_TRACE_FIELDS, UncertainSpec

#: Methods :meth:`EnsembleRunner.run` accepts.
METHODS = ("auto", "vectorized", "oracle")


class EnsembleRunner:
    """Run sampled scenario ensembles against shared cached substrates.

    Parameters
    ----------
    spec:
        An :class:`UncertainSpec`, or a plain base
        :class:`~repro.api.spec.AssessmentSpec` combined with
        ``distributions``.
    distributions:
        Field -> distribution mapping when ``spec`` is a plain spec;
        defaults to the paper's input envelope
        (:func:`~repro.uncertainty.distributions.
        paper_default_distributions`).
    substrates:
        Substrate cache shared with any other runner or assessment;
        defaults to the process-wide cache.
    catalog:
        Opt-in run cataloguing (a catalog, recorder, or path — see
        :class:`~repro.api.assessment.Assessment`).  An ensemble is a
        pure function of (spec, n_samples, seed, method), so a repeat
        :meth:`run` with the same arguments is served from the catalog
        with zero simulation; cataloguing requires an int seed.
    """

    def __init__(
        self,
        spec: Union[UncertainSpec, AssessmentSpec, None] = None,
        distributions: Optional[Mapping[str, Distribution]] = None,
        *,
        substrates: Optional[SubstrateCache] = None,
        catalog=None,
    ):
        from repro.api.assessment import _coerce_catalog
        from repro.uncertainty.distributions import paper_default_distributions

        self._spec = UncertainSpec.coerce(
            spec, distributions,
            default_distributions=paper_default_distributions)
        self._substrates = (substrates if substrates is not None
                            else shared_substrates())
        self._recorder = _coerce_catalog(catalog)
        self._check_static_fields()

    def _check_static_fields(self) -> None:
        temporal_only = [
            name for name in self._spec.fields
            if name in TEMPORAL_SAMPLE_FIELDS or name in INTENSITY_TRACE_FIELDS
        ]
        if temporal_only:
            raise ValueError(
                f"fields {', '.join(temporal_only)} only act through the "
                "time-resolved engine; use "
                "repro.uncertainty.TemporalEnsembleRunner for them")

    @property
    def spec(self) -> UncertainSpec:
        return self._spec

    @property
    def substrates(self) -> SubstrateCache:
        return self._substrates

    # -- sampling ------------------------------------------------------------------

    def draw(self, n_samples: int, seed) -> SampleMatrix:
        """The ensemble's input sample matrix (pure function of the seed)."""
        return draw_samples(self._spec.distributions, n_samples, seed)

    # -- running -------------------------------------------------------------------

    def vectorizable(self) -> bool:
        """Whether the columnar analysis pass can absorb every sampled field."""
        return (all(name in ANALYSIS_SAMPLE_FIELDS
                    for name in self._spec.fields)
                and self._spec.base.amortization == "linear")

    def run(self, n_samples: int = 1000, seed: int = 0,
            method: str = "auto") -> EnsembleResult:
        """Run the ensemble and return the quantile-native result.

        ``method="auto"`` takes the vectorized path whenever every sampled
        field is an analysis field under linear amortisation, and the
        per-sample oracle otherwise.  With ``catalog=`` configured, a
        previously catalogued (spec, n, seed, method) draw is served from
        the catalog with zero simulation.
        """
        if self._recorder is not None and method in METHODS:
            return self._recorder.run_ensemble(
                self, n_samples=n_samples, seed=seed, method=method)
        return self.run_live(n_samples=n_samples, seed=seed, method=method)

    def run_live(self, n_samples: int = 1000, seed: int = 0,
                 method: str = "auto") -> EnsembleResult:
        """Run the ensemble unconditionally (never catalog-served)."""
        if method not in METHODS:
            raise ValueError(
                f"unknown method {method!r}; expected one of {', '.join(METHODS)}")
        if method == "vectorized" and not self.vectorizable():
            raise ValueError(
                "the vectorized path needs every sampled field in "
                f"{', '.join(ANALYSIS_SAMPLE_FIELDS)} and linear "
                f"amortisation; sampled fields are "
                f"{', '.join(self._spec.fields)} with amortization="
                f"{self._spec.base.amortization!r} — use method='oracle'")
        samples = self.draw(n_samples, seed)
        if method == "oracle" or not self.vectorizable():
            active, embodied = self._evaluate_oracle(samples)
            used = "oracle"
        else:
            active, embodied = self._evaluate_vectorized(samples)
            used = "vectorized"
        return EnsembleResult(
            spec=self._spec,
            samples=samples,
            active_kg=active,
            embodied_kg=embodied,
            total_kg=active + embodied,
            seed=int(seed) if not isinstance(seed, np.random.Generator) else -1,
            method=used,
        )

    # -- the columnar analysis pass --------------------------------------------------

    def _evaluate_vectorized(self, samples: SampleMatrix):
        """Contract the cached substrate against the sampled columns.

        The arithmetic lives in the shared
        :func:`~repro.api.columnar.evaluate_ensemble_columns` kernel
        (also the basis of the batch runner's sweep compiler) so ensembles
        and sweeps run the same audited columnar pass.
        """
        from repro.api.columnar import evaluate_ensemble_columns

        return evaluate_ensemble_columns(
            self._spec.base, self._substrates, samples)

    @staticmethod
    def _validate_columns(samples: SampleMatrix) -> None:
        """Enforce the spec fields' domains on whole sampled columns (the
        oracle gets this per sample from AssessmentSpec validation)."""
        from repro.api.columnar import validate_sample_columns

        validate_sample_columns(samples)

    # -- the per-sample reference loop -----------------------------------------------

    def _evaluate_oracle(self, samples: SampleMatrix):
        """One full Assessment per sample (shared substrate cache)."""
        n = samples.n_samples
        active = np.empty(n, dtype=np.float64)
        embodied = np.empty(n, dtype=np.float64)
        for index in range(n):
            row = samples.row(index)
            try:
                spec_i = self._spec.base.replace(**row)
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"sample {index} produced an invalid spec ({row}): {exc}; "
                    "truncate the distribution to the field's domain") from exc
            result = Assessment(spec_i, substrates=self._substrates).run()
            active[index] = result.active_kg
            embodied[index] = result.embodied_kg
        return active, embodied

    # -- sensitivity ------------------------------------------------------------------

    def sensitivity(self, n_samples: int = 2048,
                    seed: int = 0) -> List[Dict[str, object]]:
        """Sobol-style one-at-a-time sensitivity ranking of the inputs.

        Each distributed field is varied alone (the others held at their
        base-spec point values) in its own ensemble of ``n_samples``, and
        fields are ranked by the variance their variation alone induces in
        the total.  ``variance_share`` normalises against the sum across
        fields — under near-additive models like equation 1 it reads as
        the field's share of the explainable output variance.
        """
        per_field = []
        for name in self._spec.fields:
            single = EnsembleRunner(
                UncertainSpec(base=self._spec.base,
                              distributions={
                                  name: self._spec.distributions[name]}),
                substrates=self._substrates)
            result = single.run(n_samples=n_samples, seed=seed)
            variance = result.std("total_kg") ** 2
            quantiles = result.quantiles("total_kg", probs=(0.05, 0.95))
            per_field.append({
                "field": name,
                "std_kg": result.std("total_kg"),
                "variance_kg2": variance,
                "p05_kg": quantiles["p05"],
                "p95_kg": quantiles["p95"],
                "swing_kg": quantiles["p95"] - quantiles["p05"],
            })
        total_variance = sum(row["variance_kg2"] for row in per_field)
        for row in per_field:
            row["variance_share"] = (
                row["variance_kg2"] / total_variance if total_variance > 0
                else 0.0)
        per_field.sort(key=lambda row: row["variance_kg2"], reverse=True)
        return per_field


__all__ = ["METHODS", "EnsembleRunner"]
