"""The distribution vocabulary of the uncertainty engine.

A :class:`Distribution` describes one uncertain numeric input — a spec
field, an intensity-trace scale factor — independent of what it is attached
to.  Each distribution:

* samples vectorised from an explicit :class:`numpy.random.Generator`
  (never global state), so ensembles are bit-reproducible per seed;
* knows its ``support()`` (the closed interval samples fall in);
* round-trips losslessly through plain dictionaries tagged with its
  registered name (``{"dist": "triangular", "low": 50, ...}``), which is
  what lets an :class:`~repro.uncertainty.spec.UncertainSpec` live in the
  same JSON file as the :class:`~repro.api.spec.AssessmentSpec` it extends.

The string-keyed :data:`DISTRIBUTIONS` registry is the extension seam, in
the same style as the pipeline's other component registries: third-party
distributions plug in with one :func:`register_distribution` call and
become addressable from spec files without touching core code.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import ComponentRegistry
from repro.seeding import SeedLike, as_generator

#: The key naming the distribution type inside a serialised distribution.
DIST_KEY = "dist"

#: ``factory(**params) -> Distribution`` — the registered distribution
#: types an :class:`~repro.uncertainty.spec.UncertainSpec` may name.
DISTRIBUTIONS = ComponentRegistry("distribution")


def register_distribution(name: str, factory=None, *, overwrite: bool = False):
    """Register a distribution type under ``name`` (decorator-friendly)."""
    return DISTRIBUTIONS.register(name, factory, overwrite=overwrite)


class Distribution:
    """One uncertain scalar input, sampled vectorised from an explicit rng.

    Subclasses are frozen dataclasses whose fields are the distribution
    parameters; they implement :meth:`_draw` and :meth:`support` and set
    ``name`` to their registered key.
    """

    #: The registered key of this distribution type.
    name: str = "abstract"

    # -- sampling -----------------------------------------------------------------

    def sample(self, n: int, seed: SeedLike) -> np.ndarray:
        """Draw ``n`` samples as a float64 array (seeded, reproducible)."""
        if n <= 0:
            raise ValueError("n must be positive")
        values = self._draw(as_generator(seed), int(n))
        return np.asarray(values, dtype=np.float64)

    def _draw(self, rng: np.random.Generator, n: int) -> np.ndarray:
        raise NotImplementedError

    # -- introspection ------------------------------------------------------------

    def support(self) -> Tuple[float, float]:
        """The closed interval every sample falls in (may be infinite)."""
        raise NotImplementedError

    # -- dict / JSON round-trip ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The distribution as a plain tagged dictionary."""
        data: Dict[str, Any] = {DIST_KEY: self.name}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, tuple):
                value = list(value)
            data[field.name] = value
        return data

    def __str__(self) -> str:
        params = ", ".join(
            f"{field.name}={getattr(self, field.name)!r}"
            for field in dataclasses.fields(self))
        return f"{self.name}({params})"


def distribution_from_dict(data: Dict[str, Any]) -> Distribution:
    """Build a distribution from its tagged dictionary form.

    The ``"dist"`` key selects the registered type; every other key is
    passed to its factory as a parameter, so unknown parameters fail with
    the factory's own signature error.
    """
    if not isinstance(data, dict):
        raise ValueError(f"a distribution must be a JSON object, got {data!r}")
    if DIST_KEY not in data:
        raise ValueError(
            f"a distribution object needs a {DIST_KEY!r} key naming its type; "
            f"registered types: {', '.join(DISTRIBUTIONS.names())}")
    params = {key: value for key, value in data.items() if key != DIST_KEY}
    try:
        made = DISTRIBUTIONS.create(data[DIST_KEY], **params)
    except TypeError as exc:
        raise ValueError(
            f"bad parameters for distribution {data[DIST_KEY]!r}: {exc}") from None
    if not isinstance(made, Distribution):
        raise TypeError(
            f"distribution factory {data[DIST_KEY]!r} returned "
            f"{type(made).__name__}, not a Distribution")
    return made


# ----------------------------------------------------------------------------
# stock distributions
# ----------------------------------------------------------------------------

@dataclass(frozen=True)
class Triangular(Distribution):
    """Triangular on [low, high] with the given mode — the paper's shape
    for grid intensity and PUE (Low/Medium/High scenario corners)."""

    low: float
    mode: float
    high: float

    name = "triangular"

    def __post_init__(self):
        if not self.low <= self.mode <= self.high:
            raise ValueError("triangular requires low <= mode <= high")
        if self.low == self.high:
            raise ValueError("triangular requires low < high (use a discrete "
                             "single-value distribution for a constant)")

    def _draw(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.triangular(self.low, self.mode, self.high, size=n)

    def support(self) -> Tuple[float, float]:
        return (self.low, self.high)


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform on [low, high] — the paper's shape for per-server embodied
    carbon (the 400-1100 kg bounds)."""

    low: float
    high: float

    name = "uniform"

    def __post_init__(self):
        if not self.low < self.high:
            raise ValueError("uniform requires low < high")

    def _draw(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    def support(self) -> Tuple[float, float]:
        return (self.low, self.high)


@dataclass(frozen=True)
class Normal(Distribution):
    """Normal(mean, std), optionally truncated by clipping to [low, high].

    Clipping concentrates the clipped tail mass *at* the bound — the right
    behaviour for physical limits like "PUE is at least 1.0" — and keeps
    sampling a single vectorised pass (no rejection loop), so the sample
    stream for a seed is independent of the truncation bounds.
    """

    mean: float
    std: float
    low: Optional[float] = None
    high: Optional[float] = None

    name = "normal"

    def __post_init__(self):
        if self.std <= 0:
            raise ValueError("normal requires std > 0")
        if (self.low is not None and self.high is not None
                and not self.low < self.high):
            raise ValueError("normal truncation requires low < high")

    def _draw(self, rng: np.random.Generator, n: int) -> np.ndarray:
        values = rng.normal(self.mean, self.std, size=n)
        if self.low is not None or self.high is not None:
            values = np.clip(values, self.low, self.high)
        return values

    def support(self) -> Tuple[float, float]:
        return (self.low if self.low is not None else -math.inf,
                self.high if self.high is not None else math.inf)


@dataclass(frozen=True)
class LogNormal(Distribution):
    """Log-normal: ``exp(Normal(mu, sigma))`` — strictly positive and
    right-skewed, the natural shape for manufacturing-footprint estimates."""

    mu: float
    sigma: float

    name = "lognormal"

    def __post_init__(self):
        if self.sigma <= 0:
            raise ValueError("lognormal requires sigma > 0")

    def _draw(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, size=n)

    def support(self) -> Tuple[float, float]:
        return (0.0, math.inf)

    @classmethod
    def from_median_spread(cls, median: float, spread: float) -> "LogNormal":
        """A log-normal from its median and a multiplicative ~68% spread
        (``spread=1.3`` means "typically within x/÷ 1.3 of the median")."""
        if median <= 0:
            raise ValueError("median must be positive")
        if spread <= 1.0:
            raise ValueError("spread must exceed 1.0")
        return cls(mu=math.log(median), sigma=math.log(spread))


@dataclass(frozen=True)
class Discrete(Distribution):
    """A finite set of values, uniformly or explicitly weighted — the
    paper's shape for the 3-7-year lifetime sweep."""

    values: Sequence[float]
    weights: Optional[Sequence[float]] = None

    name = "discrete"

    def __post_init__(self):
        values = tuple(float(v) for v in self.values)
        if not values:
            raise ValueError("discrete requires at least one value")
        object.__setattr__(self, "values", values)
        if self.weights is not None:
            weights = tuple(float(w) for w in self.weights)
            if len(weights) != len(values):
                raise ValueError("weights must match values in length")
            if any(w < 0 for w in weights) or sum(weights) <= 0:
                raise ValueError("weights must be non-negative and sum > 0")
            object.__setattr__(
                self, "weights", tuple(w / sum(weights) for w in weights))

    def _draw(self, rng: np.random.Generator, n: int) -> np.ndarray:
        values = np.asarray(self.values, dtype=np.float64)
        if self.weights is None:
            # Matches the historical Monte-Carlo lifetime draw bit for bit.
            return rng.choice(values, size=n)
        return rng.choice(values, size=n, p=np.asarray(self.weights))

    def support(self) -> Tuple[float, float]:
        return (min(self.values), max(self.values))


@dataclass(frozen=True)
class Empirical(Distribution):
    """Bootstrap resampling of an observed sample — plug measured data
    (e.g. a real intensity history) straight into an ensemble."""

    observations: Sequence[float]

    name = "empirical"

    def __post_init__(self):
        observations = tuple(float(v) for v in self.observations)
        if len(observations) < 2:
            raise ValueError("empirical requires at least two observations")
        object.__setattr__(self, "observations", observations)

    def _draw(self, rng: np.random.Generator, n: int) -> np.ndarray:
        observations = np.asarray(self.observations, dtype=np.float64)
        return observations[rng.integers(0, len(observations), size=n)]

    def support(self) -> Tuple[float, float]:
        return (min(self.observations), max(self.observations))


register_distribution(Triangular.name, Triangular)
register_distribution(Uniform.name, Uniform)
register_distribution(Normal.name, Normal)
register_distribution(LogNormal.name, LogNormal)
register_distribution(Discrete.name, Discrete)
register_distribution(Empirical.name, Empirical)


# ----------------------------------------------------------------------------
# the paper's default input envelope
# ----------------------------------------------------------------------------

def paper_default_distributions() -> Dict[str, Distribution]:
    """The paper's uncertainty envelope as spec-field distributions.

    Triangular intensity and PUE over the Low/Medium/High scenario values,
    uniform per-server embodied carbon over the Table 4 bounds, discrete
    lifetimes over the 3-7-year sweep — the same envelope the historical
    :class:`~repro.core.uncertainty.MonteCarloCarbonModel` hard-coded.
    """
    return {
        "carbon_intensity_g_per_kwh": Triangular(50.0, 175.0, 300.0),
        "pue": Triangular(1.1, 1.3, 1.5),
        "per_server_kgco2": Uniform(400.0, 1100.0),
        "lifetime_years": Discrete((3.0, 4.0, 5.0, 6.0, 7.0)),
    }


__all__ = [
    "DIST_KEY",
    "DISTRIBUTIONS",
    "Distribution",
    "Triangular",
    "Uniform",
    "Normal",
    "LogNormal",
    "Discrete",
    "Empirical",
    "distribution_from_dict",
    "paper_default_distributions",
    "register_distribution",
]
