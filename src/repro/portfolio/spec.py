"""The declarative description of a multi-site portfolio.

A :class:`PortfolioSpec` composes K named member sites, each a full
:class:`~repro.api.spec.AssessmentSpec` plus a region binding and a load
share, and round-trips losslessly through plain dictionaries and JSON
files — the same idioms as the single-site spec layer.  Its JSON form::

    {
      "name": "eu-portfolio",
      "members": [
        {"name": "gb-core", "region": "GB", "load_share": 0.5,
         "spec": {"node_scale": 0.05}},
        {"name": "fr-burst", "region": "FR", "load_share": 0.3,
         "spec": {"node_scale": 0.05}},
        {"name": "pl-legacy", "region": "PL", "load_share": 0.2,
         "spec": {"node_scale": 0.05}}
      ]
    }

The **region binding** is sugar over the grid registry: a member with
``region: "FR"`` runs its spec against the registered ``region-FR`` grid
provider (clearing any fixed intensity), so siting studies name regions
while the pipeline keeps resolving everything through
:mod:`repro.api.registry`.  A member may instead bind a grid directly
through its spec (``region`` omitted).

The **load share** describes how the portfolio's reference workload is
placed across sites.  Shares must sum to one: the portfolio carries one
workload, fully placed.  Shares never change what each member's assessment
measures (a member result is bit-identical to running its spec alone);
they drive the portfolio-level *placement view* — the share-weighted
active carbon of running the workload where the spec says it runs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.spec import AssessmentSpec, default_spec
from repro.io.jsonio import PathLike, read_json, write_json

#: Absolute tolerance on ``sum(load_share) == 1`` (float accumulation only;
#: a genuinely unplaced or overplaced portfolio is a spec error).
LOAD_SHARE_TOL = 1e-9


def region_grid_name(region: str) -> str:
    """The registered grid-provider name a region code binds to."""
    return f"region-{region}"


@dataclass(frozen=True)
class PortfolioMember:
    """One named site of a portfolio.

    Attributes
    ----------
    name:
        Member name, unique within the portfolio (used in every table and
        as the placement-ranking key).
    spec:
        The member's full assessment spec; members sharing a physical
        configuration share one simulated substrate.
    load_share:
        Fraction of the portfolio's workload placed at this site, in
        [0, 1]; all members' shares sum to one.
    region:
        Optional region code binding the member to the registered
        ``region-<CODE>`` grid provider (overriding the spec's grid and
        any fixed intensity).  ``None`` keeps the spec's own grid binding.
    """

    name: str
    spec: AssessmentSpec = field(default_factory=default_spec)
    load_share: float = 1.0
    region: Optional[str] = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("member name must be non-empty")
        if not isinstance(self.spec, AssessmentSpec):
            raise TypeError(
                f"member {self.name!r}: spec must be an AssessmentSpec, "
                f"got {type(self.spec).__name__}")
        if not 0.0 <= self.load_share <= 1.0:
            raise ValueError(
                f"member {self.name!r}: load_share must be in [0, 1], "
                f"got {self.load_share}")
        if self.region is not None and not self.region:
            raise ValueError(f"member {self.name!r}: region must be non-empty "
                             "when given")

    def effective_spec(self) -> AssessmentSpec:
        """The spec the member actually runs: region binding applied."""
        if self.region is None:
            return self.spec
        return self.spec.replace(grid=region_grid_name(self.region),
                                 carbon_intensity_g_per_kwh=None)

    # -- dict round-trip ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "load_share": self.load_share,
            "spec": self.spec.to_dict(),
        }
        if self.region is not None:
            data["region"] = self.region
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PortfolioMember":
        if not isinstance(data, Mapping):
            raise ValueError(f"a portfolio member must be a JSON object, got {data!r}")
        known = {"name", "spec", "load_share", "region"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown portfolio member fields: {', '.join(unknown)}; "
                f"known fields: {', '.join(sorted(known))}")
        spec_data = data.get("spec")
        spec = (AssessmentSpec.from_dict(spec_data) if spec_data is not None
                else default_spec())
        return cls(
            name=data.get("name", ""),
            spec=spec,
            load_share=data.get("load_share", 1.0),
            region=data.get("region"),
        )


@dataclass(frozen=True)
class PortfolioSpec:
    """Declarative configuration of a multi-site portfolio assessment."""

    members: Tuple[PortfolioMember, ...]
    name: str = "portfolio"

    def __post_init__(self):
        members = tuple(self.members)
        if not members:
            raise ValueError("a portfolio needs at least one member")
        names = [member.name for member in members]
        if len(names) != len(set(names)):
            duplicates = sorted({name for name in names if names.count(name) > 1})
            raise ValueError(
                f"member names must be unique; duplicated: {', '.join(duplicates)}")
        total_share = sum(member.load_share for member in members)
        if abs(total_share - 1.0) > LOAD_SHARE_TOL:
            raise ValueError(
                f"load shares must sum to 1 (the portfolio's workload is "
                f"fully placed); got {total_share!r}")
        if not self.name:
            raise ValueError("portfolio name must be non-empty")
        object.__setattr__(self, "members", members)

    def __len__(self) -> int:
        return len(self.members)

    @property
    def member_names(self) -> List[str]:
        return [member.name for member in self.members]

    def member(self, name: str) -> PortfolioMember:
        """Look up one member by name."""
        for member in self.members:
            if member.name == name:
                return member
        raise KeyError(f"no member {name!r} in portfolio "
                       f"(members: {', '.join(self.member_names)})")

    def replace(self, **changes: Any) -> "PortfolioSpec":
        """A copy of the spec with the given fields replaced (validated)."""
        return dataclasses.replace(self, **changes)

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def from_regions(
        cls,
        regions: Sequence[str],
        base_spec: Optional[AssessmentSpec] = None,
        load_shares: Optional[Sequence[float]] = None,
        name: str = "portfolio",
    ) -> "PortfolioSpec":
        """A portfolio with one member per region code, from one base spec.

        The canonical siting-study shape: K candidate regions hosting the
        same physical deployment (so the whole portfolio shares **one**
        simulated substrate).  ``load_shares`` defaults to a uniform
        split; members are named after their region codes.
        """
        regions = list(regions)
        if not regions:
            raise ValueError("from_regions needs at least one region")
        if len(set(regions)) != len(regions):
            raise ValueError("region codes must be unique")
        base = base_spec if base_spec is not None else default_spec()
        if load_shares is None:
            load_shares = [1.0 / len(regions)] * len(regions)
        shares = [float(share) for share in load_shares]
        if len(shares) != len(regions):
            raise ValueError(
                f"load_shares has {len(shares)} entries for "
                f"{len(regions)} regions")
        return cls(
            members=tuple(
                PortfolioMember(name=region, spec=base, load_share=share,
                                region=region)
                for region, share in zip(regions, shares)),
            name=name,
        )

    # -- dict / JSON round-trip ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The spec as a plain, JSON-serialisable dictionary."""
        return {
            "name": self.name,
            "members": [member.to_dict() for member in self.members],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PortfolioSpec":
        """Build a portfolio spec from a dictionary, rejecting unknown keys."""
        if not isinstance(data, Mapping):
            raise ValueError(f"a portfolio spec must be a JSON object, got {data!r}")
        known = {"name", "members"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown PortfolioSpec fields: {', '.join(unknown)}; "
                f"known fields: {', '.join(sorted(known))}")
        members_data = data.get("members")
        if not isinstance(members_data, Sequence) or isinstance(members_data, str):
            raise ValueError("PortfolioSpec needs a 'members' array")
        members = tuple(PortfolioMember.from_dict(item) for item in members_data)
        return cls(members=members, name=data.get("name", "portfolio"))

    def to_json(self, path: PathLike) -> None:
        """Write the spec to ``path`` as JSON."""
        write_json(path, self.to_dict())

    @classmethod
    def from_json(cls, path: PathLike) -> "PortfolioSpec":
        """Load a portfolio spec from a JSON file."""
        data = read_json(path)
        if not isinstance(data, dict):
            raise ValueError(f"{path}: a portfolio spec must be a JSON object")
        return cls.from_dict(data)


__all__ = [
    "LOAD_SHARE_TOL",
    "PortfolioMember",
    "PortfolioSpec",
    "region_grid_name",
]
