"""Federated execution of a portfolio over one shared substrate cache.

:class:`PortfolioRunner` turns a :class:`~repro.portfolio.spec.
PortfolioSpec` into a :class:`~repro.portfolio.result.PortfolioResult`:

* every member resolves its components up front, so a typo'd inventory,
  amortisation policy or region binding fails in milliseconds — before any
  simulation;
* all members run **concurrently** against one shared
  :class:`~repro.api.substrates.SubstrateCache`: members whose specs share
  a physical configuration (the common siting-study case — one deployment,
  K candidate regions) simulate exactly once, and the cache's in-flight
  deduplication guarantees that even under concurrency;
* per-region intensity traces are aligned onto one shared grid across
  sites (:func:`repro.temporal.align.align_many_resampled`), so the
  carbon-aware marginal intensities the placement analysis compares are
  computed over the same window at the same cadence.

::

    from repro.portfolio import PortfolioRunner, PortfolioSpec

    spec = PortfolioSpec.from_regions(["GB", "FR", "PL"],
                                      base_spec=default_spec(node_scale=0.05),
                                      load_shares=[0.5, 0.3, 0.2])
    result = PortfolioRunner(spec).run()
    print(result.total_kg, result.best_site_for(1000.0).name)
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional

import numpy as np

from repro.api.assessment import (
    Assessment,
    _coerce_catalog,
    resolve_spec_components,
)
from repro.api.result import AssessmentResult
from repro.api.spec import AssessmentSpec
from repro.api.substrates import SubstrateCache, resolve_substrates
from repro.temporal.align import align_many_resampled

from repro.portfolio.result import PortfolioMemberResult, PortfolioResult
from repro.portfolio.spec import PortfolioSpec

#: Quantile of the aligned intensity trace used as the carbon-aware
#: marginal intensity (matches the grid layer's "low" reference).
CLEAN_QUANTILE = 0.05


def clean_marginal_intensities(
    substrates: SubstrateCache,
    specs: List[AssessmentSpec],
    results: List[AssessmentResult],
) -> List[float]:
    """Per-member carbon-aware marginal intensity (g/kWh).

    Members pinning a constant intensity keep it (shifting load in
    time cannot beat a flat price); grid-bound members get the
    :data:`CLEAN_QUANTILE` quantile of their intensity trace, with all
    traces aligned onto one shared grid first so every site is judged
    over the same window at the same cadence.  Each trace is the
    provider's default reference series — the very one the member's
    snapshot intensity was resolved from — so the two marginal views
    the placement tables compare derive from one window.

    A module function (not a runner method) so the batch runner's sweep
    compiler can reuse the exact arithmetic when it assembles portfolio
    results from columnar member evaluations.
    """
    traced: Dict[int, str] = {}
    for index, spec in enumerate(specs):
        if spec.carbon_intensity_g_per_kwh is None:
            traced[index] = spec.grid
    clean = [float(result.spec.carbon_intensity_g_per_kwh)
             for result in results]
    if not traced:
        return clean
    series = [substrates.intensity_series(grid).series
              for grid in traced.values()]
    aligned = align_many_resampled(series)
    for (index, _), trace in zip(traced.items(), aligned):
        clean[index] = float(np.quantile(trace.values, CLEAN_QUANTILE))
    return clean


class PortfolioRunner:
    """Run every member of a portfolio against shared cached substrates.

    Parameters
    ----------
    spec:
        The portfolio to run.
    substrates:
        Substrate cache shared by all members (and with any other runner
        given the same cache); defaults to the process-wide shared cache.
    max_workers:
        Thread count for running members concurrently; ``None`` (default)
        uses one thread per member, capped at the CPU count.
    substrate_cache_dir / jobs:
        Convenience mirrors of :class:`~repro.api.batch.
        BatchAssessmentRunner`: build a private cache persisting under
        this directory and/or simulating ``jobs`` sites concurrently.
        Mutually exclusive with ``substrates``.
    catalog:
        Opt-in run cataloguing (a catalog, recorder, or path — see
        :class:`~repro.api.assessment.Assessment`): :meth:`run` records
        the portfolio result, and a repeat of a catalogued portfolio spec
        is served with zero simulation.
    """

    def __init__(
        self,
        spec: PortfolioSpec,
        *,
        substrates: Optional[SubstrateCache] = None,
        max_workers: Optional[int] = None,
        substrate_cache_dir=None,
        jobs: Optional[int] = None,
        catalog=None,
    ):
        if not isinstance(spec, PortfolioSpec):
            raise TypeError(
                f"spec must be a PortfolioSpec, got {type(spec).__name__}")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1 (or None)")
        self._spec = spec
        self._substrates = resolve_substrates(substrates, substrate_cache_dir,
                                              jobs)
        self._max_workers = max_workers
        self._recorder = _coerce_catalog(catalog)

    @property
    def spec(self) -> PortfolioSpec:
        return self._spec

    @property
    def substrates(self) -> SubstrateCache:
        return self._substrates

    # -- running ---------------------------------------------------------------------

    def run(self) -> PortfolioResult:
        """Run all members concurrently and assemble the portfolio result.

        With ``catalog=`` configured, a previously catalogued run of this
        exact portfolio spec is served from the catalog (zero simulation)
        as a :class:`~repro.catalog.ServedRun`; otherwise the live run
        happens and its result is recorded.
        """
        if self._recorder is not None:
            return self._recorder.run_portfolio(self)
        return self.run_live()

    def run_live(self) -> PortfolioResult:
        """Run the portfolio unconditionally (never catalog-served)."""
        specs = [member.effective_spec() for member in self._spec.members]
        # Fail on any typo'd component (including an unknown region
        # binding, surfacing as an unknown ``region-*`` grid provider)
        # before any member simulates.
        for spec in specs:
            resolve_spec_components(spec)
        results = self._run_members(specs)
        clean = self._clean_marginal_intensities(specs, results)
        members = tuple(
            PortfolioMemberResult(
                member=member,
                result=result,
                marginal_intensity_g_per_kwh=(
                    result.spec.carbon_intensity_g_per_kwh),
                clean_marginal_intensity_g_per_kwh=clean[index],
            )
            for index, (member, result) in enumerate(
                zip(self._spec.members, results))
        )
        return PortfolioResult(spec=self._spec, members=members)

    # -- internals -------------------------------------------------------------------

    def _run_members(self, specs: List[AssessmentSpec]) -> List[AssessmentResult]:
        """Run the member assessments, concurrently when there are several.

        The substrate cache deduplicates in-flight simulations, so members
        sharing a physical configuration cost one engine run even when
        their threads race.
        """
        workers = self._max_workers or min(len(specs), os.cpu_count() or 1)
        workers = min(workers, len(specs))

        def run_one(spec: AssessmentSpec) -> AssessmentResult:
            return Assessment(spec, substrates=self._substrates).run()

        if workers > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(run_one, specs))
        return [run_one(spec) for spec in specs]

    def _clean_marginal_intensities(
        self,
        specs: List[AssessmentSpec],
        results: List[AssessmentResult],
    ) -> List[float]:
        """Delegate to the shared :func:`clean_marginal_intensities`."""
        return clean_marginal_intensities(self._substrates, specs, results)


__all__ = ["CLEAN_QUANTILE", "PortfolioRunner", "clean_marginal_intensities"]
