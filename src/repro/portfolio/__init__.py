"""Federated multi-site portfolio assessments.

The paper assesses one facility in one grid region; an operator of a
*portfolio* of sites needs the same method — measured active energy plus
amortised embodied carbon — federated across regions: which site should
grow, where should workload live, what does the whole estate emit?

This package answers those questions on the existing cached columnar
substrate:

* :class:`~repro.portfolio.spec.PortfolioSpec` — K named member sites,
  each a full :class:`~repro.api.spec.AssessmentSpec` plus a region
  binding and a load share (JSON round-trip, registry idioms throughout);
* :class:`~repro.portfolio.runner.PortfolioRunner` — executes all members
  concurrently over one shared
  :class:`~repro.api.substrates.SubstrateCache`, so members sharing a
  physical configuration simulate exactly once;
* :class:`~repro.portfolio.result.PortfolioResult` — per-site and
  rolled-up totals, embodied fractions, and marginal-placement analysis
  (:meth:`~repro.portfolio.result.PortfolioResult.best_site_for`, both
  snapshot and carbon-aware).

Quick start::

    from repro.api import default_spec
    from repro.portfolio import PortfolioRunner, PortfolioSpec

    spec = PortfolioSpec.from_regions(
        ["GB", "FR", "PL"], base_spec=default_spec(node_scale=0.05),
        load_shares=[0.5, 0.3, 0.2])
    result = PortfolioRunner(spec).run()
    print(result.total_kg, result.best_site_for(1000.0).name)

Region × load-split grids go through
:meth:`repro.api.batch.BatchAssessmentRunner.sweep_portfolio`; the CLI
front end is ``python -m repro portfolio --spec portfolio.json``.
"""

from repro.portfolio.spec import (
    LOAD_SHARE_TOL,
    PortfolioMember,
    PortfolioSpec,
    region_grid_name,
)
from repro.portfolio.result import (
    DEFAULT_PLACEMENT_LOAD_KWH,
    PortfolioBatchResult,
    PortfolioMemberResult,
    PortfolioResult,
)
from repro.portfolio.runner import CLEAN_QUANTILE, PortfolioRunner

__all__ = [
    "CLEAN_QUANTILE",
    "DEFAULT_PLACEMENT_LOAD_KWH",
    "LOAD_SHARE_TOL",
    "PortfolioBatchResult",
    "PortfolioMember",
    "PortfolioMemberResult",
    "PortfolioResult",
    "PortfolioRunner",
    "PortfolioSpec",
    "region_grid_name",
]
