"""Results of a portfolio run: per-site detail, rollups, placement analysis.

A :class:`PortfolioResult` holds one
:class:`~repro.api.result.AssessmentResult` per member — each bit-identical
to running that member's spec alone — plus two portfolio-level views:

* the **rollup view**: site totals summed.  Conservation holds by
  construction (portfolio total == sum of site totals), which the
  differential test suite pins as a property.
* the **placement view**: the share-weighted active carbon of the
  portfolio's reference workload running where the load shares say it
  runs, plus the (sunk, placement-independent) embodied carbon of every
  site.  This is the number a load-split sweep minimises.

Marginal placement — *where should the next unit of workload live?* — is
answered by :meth:`PortfolioResult.best_site_for`: per site, the added
carbon of one extra unit of IT energy is ``energy x PUE x marginal
intensity``.  Two marginal intensities are carried per member: the
**snapshot** one (the intensity the static model priced the window at) and
the **carbon-aware** one (a low quantile of the member's grid-intensity
trace, aligned across sites — the price a scheduler free to pick the
cleanest hours would pay).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.api.result import AssessmentResult
from repro.io.csvio import write_rows_csv
from repro.io.jsonio import PathLike, write_json

from repro.portfolio.spec import PortfolioMember, PortfolioSpec

#: Default marginal load used by placement tables (one MWh of IT energy).
DEFAULT_PLACEMENT_LOAD_KWH = 1000.0


@dataclass(frozen=True)
class PortfolioMemberResult:
    """One member's assessment plus its placement-analysis inputs.

    Attributes
    ----------
    member:
        The member as specified (name, load share, region binding).
    result:
        The member's full assessment result — identical to running
        ``Assessment.from_spec(member.effective_spec()).run()`` alone.
    marginal_intensity_g_per_kwh:
        The intensity an extra unit of workload is priced at under
        snapshot (period-average) accounting — the member's resolved grid
        intensity.
    clean_marginal_intensity_g_per_kwh:
        The carbon-aware marginal intensity: a low quantile of the
        member's intensity trace over the portfolio's shared window
        (equals the snapshot intensity when the member pins a constant).
    """

    member: PortfolioMember
    result: AssessmentResult
    marginal_intensity_g_per_kwh: float
    clean_marginal_intensity_g_per_kwh: float

    # -- convenience views --------------------------------------------------------

    @property
    def name(self) -> str:
        return self.member.name

    @property
    def region(self) -> str | None:
        return self.member.region

    @property
    def load_share(self) -> float:
        return self.member.load_share

    @property
    def grid(self) -> str:
        return self.result.spec.grid

    @property
    def pue(self) -> float:
        return self.result.spec.pue

    @property
    def total_kg(self) -> float:
        return self.result.total_kg

    @property
    def active_kg(self) -> float:
        return self.result.active_kg

    @property
    def embodied_kg(self) -> float:
        return self.result.embodied_kg

    @property
    def energy_kwh(self) -> float:
        return self.result.energy_kwh

    @property
    def nodes(self) -> int:
        return self.result.snapshot.total_nodes

    def marginal_intensity(self, carbon_aware: bool = False) -> float:
        return (self.clean_marginal_intensity_g_per_kwh if carbon_aware
                else self.marginal_intensity_g_per_kwh)

    def added_kg_for(self, load_kwh: float, carbon_aware: bool = False) -> float:
        """Carbon added by placing ``load_kwh`` of IT energy at this site."""
        if load_kwh < 0:
            raise ValueError("load_kwh must be non-negative")
        return load_kwh * self.pue * self.marginal_intensity(carbon_aware) / 1000.0

    def site_row(self) -> Dict[str, object]:
        """One flat summary row for the portfolio's per-site table."""
        return {
            "member": self.name,
            "region": self.region,
            "grid": self.grid,
            "load_share": self.load_share,
            "nodes": self.nodes,
            "energy_kwh": self.energy_kwh,
            "intensity_g_per_kwh": self.marginal_intensity_g_per_kwh,
            "pue": self.pue,
            "active_kg": self.active_kg,
            "embodied_kg": self.embodied_kg,
            "total_kg": self.total_kg,
            "embodied_fraction": self.result.embodied_fraction,
        }


@dataclass(frozen=True)
class PortfolioResult:
    """Everything one portfolio run produced."""

    spec: PortfolioSpec
    members: Tuple[PortfolioMemberResult, ...]

    def __post_init__(self):
        object.__setattr__(self, "members", tuple(self.members))
        if len(self.members) != len(self.spec.members):
            raise ValueError(
                f"result has {len(self.members)} member results for "
                f"{len(self.spec.members)} spec members")

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    def member(self, name: str) -> PortfolioMemberResult:
        """Look up one member's result by name."""
        for member in self.members:
            if member.name == name:
                return member
        raise KeyError(f"no member {name!r} in portfolio result "
                       f"(members: {', '.join(m.name for m in self.members)})")

    # -- rollup view (conserved: portfolio == sum of sites) -----------------------

    @property
    def total_kg(self) -> float:
        return sum(member.total_kg for member in self.members)

    @property
    def active_kg(self) -> float:
        return sum(member.active_kg for member in self.members)

    @property
    def embodied_kg(self) -> float:
        return sum(member.embodied_kg for member in self.members)

    @property
    def energy_kwh(self) -> float:
        return sum(member.energy_kwh for member in self.members)

    @property
    def total_nodes(self) -> int:
        return sum(member.nodes for member in self.members)

    @property
    def embodied_fraction(self) -> float:
        total = self.total_kg
        return self.embodied_kg / total if total > 0 else 0.0

    # -- placement view (load-share weighted) -------------------------------------

    @property
    def placed_active_kg(self) -> float:
        """Active carbon of the reference workload placed per the shares."""
        return sum(member.load_share * member.active_kg for member in self.members)

    @property
    def placed_total_kg(self) -> float:
        """Placed active carbon plus the (sunk) embodied carbon of all sites."""
        return self.placed_active_kg + self.embodied_kg

    @property
    def weighted_marginal_intensity_g_per_kwh(self) -> float:
        """The share-weighted intensity the portfolio's load experiences."""
        return sum(member.load_share * member.marginal_intensity_g_per_kwh
                   for member in self.members)

    # -- marginal placement --------------------------------------------------------

    def best_site_for(
        self, load_kwh: float = DEFAULT_PLACEMENT_LOAD_KWH,
        carbon_aware: bool = False,
    ) -> PortfolioMemberResult:
        """The member minimising the carbon added by an extra load.

        ``carbon_aware=False`` prices the load at each site's snapshot
        (period-average) intensity; ``carbon_aware=True`` at the clean
        marginal intensity a time-shifting scheduler could reach.  Ties
        break towards the earlier member, so rankings are deterministic.
        """
        return min(self.members,
                   key=lambda member: member.added_kg_for(load_kwh, carbon_aware))

    def placement_rows(
        self, load_kwh: float = DEFAULT_PLACEMENT_LOAD_KWH,
        carbon_aware: bool = False,
    ) -> List[Dict[str, object]]:
        """Members ranked by the carbon added by an extra load, best first."""
        ranked = sorted(self.members,
                        key=lambda member: member.added_kg_for(load_kwh,
                                                               carbon_aware))
        return [
            {
                "rank": rank,
                "member": member.name,
                "region": member.region,
                "grid": member.grid,
                "pue": member.pue,
                "marginal_intensity_g_per_kwh":
                    member.marginal_intensity(carbon_aware),
                "added_kg": member.added_kg_for(load_kwh, carbon_aware),
            }
            for rank, member in enumerate(ranked, start=1)
        ]

    # -- tables / serialisation ----------------------------------------------------

    def site_rows(self) -> List[Dict[str, object]]:
        """One summary row per member, in spec order."""
        return [member.site_row() for member in self.members]

    def summary(self) -> Dict[str, object]:
        """One flat row of the portfolio-level rollups."""
        best = self.best_site_for()
        best_clean = self.best_site_for(carbon_aware=True)
        return {
            "portfolio": self.spec.name,
            "sites": len(self.members),
            "nodes": self.total_nodes,
            "energy_kwh": self.energy_kwh,
            "active_kg": self.active_kg,
            "embodied_kg": self.embodied_kg,
            "total_kg": self.total_kg,
            "embodied_fraction": self.embodied_fraction,
            "placed_active_kg": self.placed_active_kg,
            "placed_total_kg": self.placed_total_kg,
            "weighted_marginal_intensity_g_per_kwh":
                self.weighted_marginal_intensity_g_per_kwh,
            "best_site": best.name,
            "best_site_carbon_aware": best_clean.name,
        }

    def as_dict(self, load_kwh: float = DEFAULT_PLACEMENT_LOAD_KWH) -> Dict[str, Any]:
        """The result as a JSON-serialisable dictionary."""
        return {
            "spec": self.spec.to_dict(),
            "summary": self.summary(),
            "sites": self.site_rows(),
            "placement": {
                "load_kwh": load_kwh,
                "snapshot": self.placement_rows(load_kwh),
                "carbon_aware": self.placement_rows(load_kwh, carbon_aware=True),
            },
        }

    def to_json(self, path: PathLike) -> None:
        """Write :meth:`as_dict` to ``path`` as JSON."""
        write_json(path, self.as_dict())

    def to_csv(self, path: PathLike) -> None:
        """Write the per-site summary rows to ``path`` as CSV."""
        write_rows_csv(path, self.site_rows())


@dataclass(frozen=True)
class PortfolioBatchResult:
    """The ordered outcome of a portfolio scenario sweep."""

    results: Tuple[PortfolioResult, ...]

    def __post_init__(self):
        object.__setattr__(self, "results", tuple(self.results))
        if not self.results:
            raise ValueError("a portfolio batch needs at least one result")

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> PortfolioResult:
        return self.results[index]

    @property
    def placed_totals_kg(self) -> List[float]:
        return [result.placed_total_kg for result in self.results]

    def best(self) -> PortfolioResult:
        """The scenario whose placement emits the least total carbon."""
        return min(self.results, key=lambda result: result.placed_total_kg)

    def as_rows(self) -> List[Dict[str, object]]:
        """One summary row per scenario, in sweep order, with its split."""
        rows = []
        for result in self.results:
            row = dict(result.summary())
            row["load_split"] = "/".join(
                f"{member.load_share:g}" for member in result.members)
            rows.append(row)
        return rows

    def to_json(self, path: PathLike) -> None:
        write_json(path, self.as_rows())

    def to_csv(self, path: PathLike) -> None:
        write_rows_csv(path, self.as_rows())


__all__ = [
    "DEFAULT_PLACEMENT_LOAD_KWH",
    "PortfolioBatchResult",
    "PortfolioMemberResult",
    "PortfolioResult",
]
