"""Seed discipline for every stochastic entry point.

All randomness in the library flows through explicitly seeded
:class:`numpy.random.Generator` instances — nothing ever touches numpy's
global state, so importing or running any part of the pipeline can never
perturb another component's stream (or a user's own ``np.random`` usage).

:func:`as_generator` is the one conversion point: stochastic entry points
accept either an integer seed (the reproducible default) or an
already-constructed ``Generator`` (for callers that manage their own
streams, e.g. drawing several dependent ensembles from one source), and
normalise it here.  Passing the same integer seed twice yields bit-identical
output; passing the same ``Generator`` twice continues its stream.
"""

from __future__ import annotations

from typing import Union

import numpy as np

#: What stochastic entry points accept: an integer seed or a ready Generator.
SeedLike = Union[int, np.integer, np.random.Generator]


def as_generator(seed: SeedLike) -> np.random.Generator:
    """A :class:`numpy.random.Generator` for ``seed``.

    An integer (or numpy integer) seeds a fresh ``default_rng``; a
    ``Generator`` is returned unchanged so its stream continues.  Anything
    else — notably ``None``, which would silently give irreproducible
    OS-entropy seeding — is rejected loudly.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)) and not isinstance(seed, bool):
        return np.random.default_rng(int(seed))
    raise TypeError(
        f"seed must be an int or numpy.random.Generator, got {type(seed).__name__}; "
        "explicit seeds keep every run reproducible"
    )


__all__ = ["SeedLike", "as_generator"]
