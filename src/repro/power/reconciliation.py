"""Comparing and reconciling readings from different measurement methods.

Table 2 of the paper shows the same site reporting different energies
depending on the method used — Turbostat below IPMI below PDU below (or
equal to) the facility meter — and the paper notes that "care is needed in
collecting this data and potentially adjusting measurements".  This module
implements that adjustment step:

* :func:`compare_methods` computes the pairwise ratios between methods for
  one site (e.g. "Turbostat reads 5% below IPMI").
* :func:`reconcile_to_reference` scales narrower-scope readings up to a
  chosen reference scope using those ratios, which is what an operator does
  when only the narrow method is available at some sites.
* :func:`best_estimate_kwh` picks the widest-scope reading available for a
  site, which is how the paper arrives at its 18,760 kWh total.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

#: Measurement methods ordered from narrowest to widest scope.
METHOD_SCOPE_ORDER = ("turbostat", "ipmi", "pdu", "facility")


@dataclass(frozen=True)
class MethodComparison:
    """The relationship between two measurement methods at one site."""

    narrow_method: str
    wide_method: str
    narrow_kwh: float
    wide_kwh: float

    def __post_init__(self):
        if self.narrow_kwh < 0 or self.wide_kwh < 0:
            raise ValueError("energies must be non-negative")

    @property
    def ratio(self) -> float:
        """narrow / wide — below 1.0 when the narrow method under-reports."""
        if self.wide_kwh == 0:
            raise ZeroDivisionError("wide-method energy is zero")
        return self.narrow_kwh / self.wide_kwh

    @property
    def shortfall_fraction(self) -> float:
        """How much of the wide reading the narrow method misses (0..1)."""
        return 1.0 - self.ratio


def _ordered_methods(readings: Mapping[str, Optional[float]]) -> list[str]:
    """The methods present in ``readings``, narrowest first."""
    present = [m for m in METHOD_SCOPE_ORDER if readings.get(m) is not None]
    unknown = [m for m in readings if m not in METHOD_SCOPE_ORDER and readings[m] is not None]
    if unknown:
        raise ValueError(f"unknown measurement methods: {sorted(unknown)}")
    return present


def compare_methods(readings: Mapping[str, Optional[float]]) -> list[MethodComparison]:
    """Pairwise comparisons between adjacent available scopes at one site.

    ``readings`` maps method name to kWh (or ``None`` when unavailable).
    The result lists one comparison per adjacent pair of available methods,
    narrowest to widest — mirroring the QMUL discussion in the paper.
    """
    present = _ordered_methods(readings)
    comparisons = []
    for narrow, wide in zip(present, present[1:]):
        comparisons.append(
            MethodComparison(
                narrow_method=narrow,
                wide_method=wide,
                narrow_kwh=float(readings[narrow]),
                wide_kwh=float(readings[wide]),
            )
        )
    return comparisons


def best_estimate_kwh(readings: Mapping[str, Optional[float]]) -> float:
    """The widest-scope reading available for a site.

    This is the value the paper carries into its total: the facility figure
    when present, otherwise PDU, otherwise IPMI, otherwise Turbostat.
    """
    present = _ordered_methods(readings)
    if not present:
        raise ValueError("no readings available for this site")
    return float(readings[present[-1]])


def reconcile_to_reference(
    readings: Mapping[str, Optional[float]],
    reference_ratios: Mapping[str, float],
    reference_method: str = "facility",
) -> Dict[str, float]:
    """Scale each narrow reading up to the reference scope.

    ``reference_ratios`` maps method name to the ratio
    ``method_reading / reference_reading`` observed at sites where both were
    available (the output of :func:`ratio_table`).  Readings made with the
    reference method pass through unchanged; others are divided by their
    ratio.  Methods with no observed ratio raise ``KeyError`` so silent
    extrapolation cannot happen.
    """
    if reference_method not in METHOD_SCOPE_ORDER:
        raise ValueError(f"unknown reference method {reference_method!r}")
    adjusted: Dict[str, float] = {}
    for method in _ordered_methods(readings):
        value = float(readings[method])
        if method == reference_method:
            adjusted[method] = value
            continue
        if method not in reference_ratios:
            raise KeyError(
                f"no reference ratio for method {method!r}; cannot reconcile"
            )
        ratio = float(reference_ratios[method])
        if ratio <= 0:
            raise ValueError(f"reference ratio for {method!r} must be positive")
        adjusted[method] = value / ratio
    return adjusted


def ratio_table(
    per_site_readings: Mapping[str, Mapping[str, Optional[float]]],
    reference_method: str = "facility",
) -> Dict[str, float]:
    """Average ratio of each method to the reference across sites.

    Only sites where both the method and the reference are available
    contribute.  The result feeds :func:`reconcile_to_reference`.
    """
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for readings in per_site_readings.values():
        reference = readings.get(reference_method)
        if reference is None or reference == 0:
            continue
        for method in _ordered_methods(readings):
            if method == reference_method:
                continue
            value = readings[method]
            if value is None:
                continue
            sums[method] = sums.get(method, 0.0) + float(value) / float(reference)
            counts[method] = counts.get(method, 0) + 1
    return {method: sums[method] / counts[method] for method in sums}


__all__ = [
    "METHOD_SCOPE_ORDER",
    "MethodComparison",
    "compare_methods",
    "best_estimate_kwh",
    "reconcile_to_reference",
    "ratio_table",
]
