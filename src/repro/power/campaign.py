"""Running a measurement campaign over simulated sites.

A :class:`MeasurementCampaign` owns a set of configured instruments and a
campaign seed; :meth:`MeasurementCampaign.measure_site` runs the requested
subset of instruments over one site's power trace and returns a
:class:`SiteEnergyReport` — the simulated equivalent of one row of the
paper's Table 2.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from repro.power.instruments import InstrumentReading, MeasurementInstrument
from repro.power.reconciliation import METHOD_SCOPE_ORDER, best_estimate_kwh
from repro.power.traces import PowerBreakdownTrace


@dataclass(frozen=True)
class SiteEnergyReport:
    """Per-site measurement results for one campaign window."""

    site: str
    node_count: int
    readings: Mapping[str, InstrumentReading]
    true_it_energy_kwh: float
    network_energy_kwh: float

    def __post_init__(self):
        if self.node_count < 0:
            raise ValueError("node_count must be non-negative")
        if self.true_it_energy_kwh < 0:
            raise ValueError("true_it_energy_kwh must be non-negative")
        if self.network_energy_kwh < 0:
            raise ValueError("network_energy_kwh must be non-negative")
        object.__setattr__(self, "readings", dict(self.readings))

    def energy_by_method(self) -> Dict[str, Optional[float]]:
        """Energy (kWh) keyed by method, ``None`` for methods not used here."""
        out: Dict[str, Optional[float]] = {}
        for method in METHOD_SCOPE_ORDER:
            reading = self.readings.get(method)
            out[method] = reading.energy_kwh if reading is not None else None
        return out

    @property
    def best_estimate_kwh(self) -> float:
        """The widest-scope reading available (the paper's per-site figure)."""
        return best_estimate_kwh(self.energy_by_method())

    def as_table_row(self) -> Dict[str, object]:
        """A Table 2 style row: site, per-method kWh, node count."""
        row: Dict[str, object] = {"site": self.site}
        row.update(self.energy_by_method())
        row["nodes"] = self.node_count
        return row


class MeasurementCampaign:
    """A configured set of instruments applied consistently across sites.

    Parameters
    ----------
    instruments:
        Mapping of method name (``"turbostat"``, ``"ipmi"``, ``"pdu"``,
        ``"facility"``) to a configured instrument.  The method name must
        match the instrument's own ``method`` attribute.
    seed:
        Campaign seed; each (site, method) pair derives its own stream so
        adding a method does not perturb the others.
    """

    def __init__(self, instruments: Mapping[str, MeasurementInstrument], seed: int = 0):
        if not instruments:
            raise ValueError("a campaign needs at least one instrument")
        for name, instrument in instruments.items():
            if name != instrument.method:
                raise ValueError(
                    f"instrument registered as {name!r} reports method "
                    f"{instrument.method!r}"
                )
            if name not in METHOD_SCOPE_ORDER:
                raise ValueError(f"unknown measurement method {name!r}")
        self._instruments = dict(instruments)
        self._seed = int(seed)

    @property
    def methods(self) -> list[str]:
        """The methods this campaign can apply, narrowest scope first."""
        return [m for m in METHOD_SCOPE_ORDER if m in self._instruments]

    def _method_seed(self, site: str, method: str) -> int:
        """A stable per-(site, method) seed derived from the campaign seed.

        Uses CRC32, not ``hash()``: Python randomises string hashes per
        process, which would make "the same campaign" produce different
        measurement noise on every run.
        """
        return (zlib.crc32(f"{site}\x1f{method}".encode()) ^ self._seed) & 0x7FFFFFFF

    def measure_site(
        self,
        site_name: str,
        trace: PowerBreakdownTrace,
        network_power_w: float = 0.0,
        methods: Optional[Sequence[str]] = None,
    ) -> SiteEnergyReport:
        """Measure one site with the requested methods.

        ``methods`` defaults to every instrument in the campaign; the IRIS
        snapshot restricts it per site to the methods each facility could
        actually provide (Table 2 has empty cells).
        """
        if network_power_w < 0:
            raise ValueError("network_power_w must be non-negative")
        selected = list(methods) if methods is not None else self.methods
        unknown = [m for m in selected if m not in self._instruments]
        if unknown:
            raise ValueError(f"campaign has no instrument for methods {unknown}")
        readings: Dict[str, InstrumentReading] = {}
        for method in selected:
            instrument = self._instruments[method]
            readings[method] = instrument.measure(
                trace,
                seed=self._method_seed(site_name, method),
                network_power_w=network_power_w,
            )
        hours = trace.duration_s / 3600.0
        return SiteEnergyReport(
            site=site_name,
            node_count=trace.node_count,
            readings=readings,
            true_it_energy_kwh=trace.total_energy_kwh("wall"),
            network_energy_kwh=network_power_w * hours / 1000.0,
        )

    @staticmethod
    def total_best_estimate_kwh(reports: Sequence[SiteEnergyReport]) -> float:
        """Sum of each site's widest-scope reading (the paper's total)."""
        return float(sum(report.best_estimate_kwh for report in reports))


__all__ = ["MeasurementCampaign", "SiteEnergyReport"]
