"""Component-resolved node power model.

The model maps effective utilisation ``u`` (from the workload simulator) to
the electrical draw of each part of a node:

* **CPU** — ``tdp * (idle_fraction + (1 - idle_fraction) * u)``; modern
  server CPUs idle at roughly a quarter of TDP and scale close to linearly
  with sustained load.
* **DRAM** — per-DIMM power with a smaller dynamic range.
* **Storage** — drives move between their idle and active figures with
  utilisation.
* **Platform** — mainboard, BMC, fans and NICs, treated as constant.
* **PSU loss** — the DC sum divided by the PSU efficiency gives wall (AC)
  power; the difference is conversion loss.

The split matters because the measurement instruments observe different
subsets: Turbostat/RAPL sees CPU+DRAM, IPMI sees the node's input power,
PDUs see wall power plus distribution losses.  All methods are vectorised
over numpy arrays so a whole site's utilisation matrix can be converted to
power in one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.inventory.node import NodeSpec


@dataclass(frozen=True)
class NodePowerModel:
    """Power model for one node configuration.

    Parameters
    ----------
    spec:
        The node's hardware configuration.
    cpu_idle_fraction:
        Fraction of CPU TDP drawn at zero utilisation.
    dram_idle_fraction:
        Fraction of full DRAM power drawn at zero utilisation.
    """

    spec: NodeSpec
    cpu_idle_fraction: float = 0.25
    dram_idle_fraction: float = 0.6

    def __post_init__(self):
        if not 0.0 <= self.cpu_idle_fraction < 1.0:
            raise ValueError("cpu_idle_fraction must be in [0, 1)")
        if not 0.0 <= self.dram_idle_fraction <= 1.0:
            raise ValueError("dram_idle_fraction must be in [0, 1]")

    # -- component draws (vectorised) ---------------------------------------------

    def cpu_power_w(self, utilization):
        """CPU package power at the given utilisation (scalar or array)."""
        u = np.asarray(utilization, dtype=np.float64)
        tdp = self.spec.cpu_tdp_w
        return tdp * (self.cpu_idle_fraction + (1.0 - self.cpu_idle_fraction) * u)

    def dram_power_w(self, utilization):
        """DRAM power at the given utilisation (scalar or array)."""
        u = np.asarray(utilization, dtype=np.float64)
        full = self.spec.memory_power_w
        return full * (self.dram_idle_fraction + (1.0 - self.dram_idle_fraction) * u)

    def storage_power_w(self, utilization):
        """Storage power at the given utilisation (scalar or array)."""
        u = np.asarray(utilization, dtype=np.float64)
        idle = self.spec.storage_idle_power_w
        active = self.spec.storage_active_power_w
        return idle + (active - idle) * u

    def platform_power_w(self, utilization):
        """Mainboard, fans and NIC power (constant with utilisation)."""
        u = np.asarray(utilization, dtype=np.float64)
        constant = self.spec.base_power_w + self.spec.nic_power_w
        return np.full_like(u, constant, dtype=np.float64)

    def gpu_power_w(self, utilization):
        """Accelerator power at the given utilisation (zero for CPU-only nodes)."""
        u = np.asarray(utilization, dtype=np.float64)
        tdp = self.spec.gpu_tdp_w
        if tdp == 0.0:
            return np.zeros_like(u, dtype=np.float64)
        return tdp * (0.1 + 0.9 * u)

    # -- aggregates ----------------------------------------------------------------

    def dc_power_w(self, utilization):
        """Total DC-side power of the node's components."""
        return (
            self.cpu_power_w(utilization)
            + self.dram_power_w(utilization)
            + self.storage_power_w(utilization)
            + self.platform_power_w(utilization)
            + self.gpu_power_w(utilization)
        )

    def wall_power_w(self, utilization):
        """AC (wall) power: DC power divided by PSU efficiency."""
        return self.dc_power_w(utilization) / self.spec.psu_efficiency

    def psu_loss_w(self, utilization):
        """Power dissipated in the PSU at the given utilisation."""
        return self.wall_power_w(utilization) - self.dc_power_w(utilization)

    def rapl_visible_power_w(self, utilization):
        """The part of the node's power an in-band RAPL tool (Turbostat) reports.

        RAPL exposes the CPU package and DRAM domains; everything else on
        the board is invisible to it.
        """
        return self.cpu_power_w(utilization) + self.dram_power_w(utilization)

    # -- characteristic points ----------------------------------------------------

    @property
    def idle_wall_power_w(self) -> float:
        """Wall power at zero utilisation."""
        return float(self.wall_power_w(0.0))

    @property
    def max_wall_power_w(self) -> float:
        """Wall power at full utilisation."""
        return float(self.wall_power_w(1.0))

    def breakdown_at(self, utilization: float) -> Dict[str, float]:
        """Per-component wall-referenced breakdown at one operating point."""
        return {
            "cpu_w": float(self.cpu_power_w(utilization)),
            "dram_w": float(self.dram_power_w(utilization)),
            "storage_w": float(self.storage_power_w(utilization)),
            "platform_w": float(self.platform_power_w(utilization)),
            "gpu_w": float(self.gpu_power_w(utilization)),
            "psu_loss_w": float(self.psu_loss_w(utilization)),
            "wall_w": float(self.wall_power_w(utilization)),
        }

    def energy_kwh(self, mean_utilization: float, hours: float) -> float:
        """Wall energy for a constant utilisation held for ``hours`` hours."""
        if hours < 0:
            raise ValueError("hours must be non-negative")
        return float(self.wall_power_w(mean_utilization)) * hours / 1000.0


__all__ = ["NodePowerModel"]
