"""Calibrating utilisation against an observed average node power.

The snapshot reproduction needs to drive each simulated site at whatever
load level makes its average per-node wall power match the per-node power
implied by the paper's Table 2 (energy / nodes / 24 h).  Because the node
power model is strictly monotonic in utilisation, that inverse is a simple
bisection; it is exposed here so examples and the snapshot orchestration
can use it, and so the assumption (power observed => load inferred) is a
single, testable piece of code.
"""

from __future__ import annotations

from repro.power.node_power import NodePowerModel


def utilization_for_target_power(
    model: NodePowerModel,
    target_wall_power_w: float,
    tolerance_w: float = 0.01,
    max_iterations: int = 100,
) -> float:
    """The utilisation at which ``model`` draws ``target_wall_power_w``.

    Returns 0.0 when the target is at or below idle power and 1.0 when it is
    at or above the maximum — the caller is expected to check
    :attr:`~repro.power.node_power.NodePowerModel.idle_wall_power_w` /
    :attr:`~repro.power.node_power.NodePowerModel.max_wall_power_w` if it
    needs to know whether clamping occurred.
    """
    if target_wall_power_w < 0:
        raise ValueError("target_wall_power_w must be non-negative")
    if tolerance_w <= 0:
        raise ValueError("tolerance_w must be positive")
    idle = model.idle_wall_power_w
    maximum = model.max_wall_power_w
    if target_wall_power_w <= idle:
        return 0.0
    if target_wall_power_w >= maximum:
        return 1.0
    low, high = 0.0, 1.0
    for _ in range(max_iterations):
        mid = 0.5 * (low + high)
        power = float(model.wall_power_w(mid))
        if abs(power - target_wall_power_w) <= tolerance_w:
            return mid
        if power < target_wall_power_w:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


def clamped_target_power(model: NodePowerModel, target_wall_power_w: float) -> float:
    """The power the model can actually reproduce for a requested target.

    Targets below idle clamp to idle and above maximum clamp to maximum;
    used by the snapshot report to quantify how much of any per-site energy
    discrepancy is attributable to clamping rather than measurement effects.
    """
    if target_wall_power_w < 0:
        raise ValueError("target_wall_power_w must be non-negative")
    return float(min(max(target_wall_power_w, model.idle_wall_power_w),
                     model.max_wall_power_w))


__all__ = ["utilization_for_target_power", "clamped_target_power"]
