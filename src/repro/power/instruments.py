"""Simulated power-measurement instruments.

The paper collects energy with four methods of decreasing scope and
increasing resolution, and its Table 2 shows the systematic differences
between them.  Each class below models one method as:

``scope`` — which physical power the method can see (RAPL domains, node
wall input, rack feed, room feed);
``sample_period_s`` — how often it reports;
``noise_fraction`` — per-sample relative measurement error;
``dropout_fraction`` — fraction of samples that are lost (polls time out,
exports have holes);
``node_coverage`` — fraction of the site's nodes the method is deployed on
(IPMI/Turbostat are frequently missing from part of a fleet).

``measure`` runs the instrument over a
:class:`~repro.power.traces.PowerBreakdownTrace` and returns an
:class:`InstrumentReading` with the energy the instrument would have
reported, alongside bookkeeping needed by the reconciliation step.  All
randomness is drawn from a caller-supplied seed so campaigns are exactly
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.power.traces import PowerBreakdownTrace
from repro.seeding import SeedLike, as_generator
from repro.timeseries.gapfill import fill_forward
from repro.timeseries.integrate import energy_kwh_from_power_w
from repro.timeseries.resample import resample_mean
from repro.timeseries.series import TimeSeries


@dataclass(frozen=True)
class InstrumentReading:
    """The outcome of one instrument measuring one site for one window."""

    method: str
    energy_kwh: float
    nodes_covered: int
    nodes_total: int
    scope: str
    samples_per_node: int
    samples_dropped: int
    includes_network: bool

    def __post_init__(self):
        if self.energy_kwh < 0:
            raise ValueError("energy_kwh must be non-negative")
        if self.nodes_covered > self.nodes_total:
            raise ValueError("nodes_covered cannot exceed nodes_total")

    @property
    def coverage_fraction(self) -> float:
        """Fraction of the site's nodes this reading covers."""
        if self.nodes_total == 0:
            return 0.0
        return self.nodes_covered / self.nodes_total


@dataclass(frozen=True)
class MeasurementInstrument:
    """Base class for the simulated instruments.

    Subclasses fix ``method`` and ``scope`` and may add scope-specific
    post-processing via :meth:`_site_power_series`.
    """

    sample_period_s: float = 60.0
    noise_fraction: float = 0.01
    dropout_fraction: float = 0.0
    node_coverage: float = 1.0

    #: Overridden by subclasses.
    method: str = field(default="abstract", init=False)
    scope: str = field(default="wall", init=False)
    includes_network: bool = field(default=False, init=False)

    def __post_init__(self):
        if self.sample_period_s <= 0:
            raise ValueError("sample_period_s must be positive")
        if self.noise_fraction < 0:
            raise ValueError("noise_fraction must be non-negative")
        if not 0.0 <= self.dropout_fraction < 1.0:
            raise ValueError("dropout_fraction must be in [0, 1)")
        if not 0.0 < self.node_coverage <= 1.0:
            raise ValueError("node_coverage must be in (0, 1]")

    # -- hooks for subclasses ----------------------------------------------------

    def _site_power_series(
        self, trace: PowerBreakdownTrace, covered_rows: np.ndarray,
        network_power_w: float,
    ) -> TimeSeries:
        """The site-level power series this instrument observes (watts).

        The covered-node reduction maps the whole fleet matrix to the site
        series in one pass (:meth:`PowerBreakdownTrace.covered_series`);
        on a columnar trace no per-scope power matrix is materialised.
        """
        series = trace.covered_series(self.scope, covered_rows)
        if self.includes_network:
            series = series + network_power_w
        return series

    # -- the measurement itself -----------------------------------------------------

    def _covered_rows(self, trace: PowerBreakdownTrace, rng: np.random.Generator) -> np.ndarray:
        """Indices of the nodes this instrument is deployed on."""
        n = trace.node_count
        covered = max(1, int(round(self.node_coverage * n)))
        if covered >= n:
            return np.arange(n)
        return np.sort(rng.choice(n, size=covered, replace=False))

    def measure(
        self,
        trace: PowerBreakdownTrace,
        seed: SeedLike = 0,
        network_power_w: float = 0.0,
    ) -> InstrumentReading:
        """Measure the site described by ``trace`` over its full window."""
        rng = as_generator(seed)
        covered_rows = self._covered_rows(trace, rng)
        site_series = self._site_power_series(trace, covered_rows, network_power_w)
        # Sample at the instrument's cadence, rounded to a whole number of
        # simulation steps (an instrument cannot observe finer structure
        # than the simulation resolves).
        if self.sample_period_s >= trace.step:
            factor = max(1, int(round(self.sample_period_s / trace.step)))
            sampled = resample_mean(site_series, factor * trace.step)
        else:
            # The instrument samples faster than the simulation resolution;
            # the extra samples carry no extra information, so keep the grid.
            sampled = site_series
        values = sampled.values.copy()
        # Per-sample measurement noise.
        if self.noise_fraction > 0:
            values = values * (1.0 + self.noise_fraction * rng.standard_normal(len(values)))
            values = np.maximum(values, 0.0)
        # Dropped samples become gaps, then are repaired the way an analyst
        # would (carry the last reading forward).
        dropped = 0
        if self.dropout_fraction > 0 and len(values) > 1:
            drop_mask = rng.random(len(values)) < self.dropout_fraction
            # Never drop every sample.
            if drop_mask.all():
                drop_mask[0] = False
            dropped = int(drop_mask.sum())
            values[drop_mask] = np.nan
        observed = TimeSeries(sampled.start, sampled.step, values)
        if dropped:
            observed = fill_forward(observed)
        energy_kwh = energy_kwh_from_power_w(observed)
        return InstrumentReading(
            method=self.method,
            energy_kwh=float(energy_kwh),
            nodes_covered=int(len(covered_rows)),
            nodes_total=trace.node_count,
            scope=self.scope,
            samples_per_node=len(values),
            samples_dropped=dropped,
            includes_network=self.includes_network,
        )


@dataclass(frozen=True)
class TurbostatMeter(MeasurementInstrument):
    """In-band RAPL-based measurement (Turbostat).

    Sees only the CPU package and DRAM domains, so it structurally
    under-reports node power; it is however the highest-resolution and
    lowest-noise method available.
    """

    sample_period_s: float = 10.0
    noise_fraction: float = 0.003
    dropout_fraction: float = 0.001
    method: str = field(default="turbostat", init=False)
    scope: str = field(default="rapl", init=False)
    includes_network: bool = field(default=False, init=False)


@dataclass(frozen=True)
class IPMIMeter(MeasurementInstrument):
    """Out-of-band BMC power readings (IPMI DCMI).

    Reports the node's input power.  BMC power sensors are coarse (typically
    a few percent accuracy, quantised) and a fraction of any real fleet has
    BMCs that do not expose the reading at all — captured by
    ``node_coverage``.
    """

    sample_period_s: float = 30.0
    noise_fraction: float = 0.02
    dropout_fraction: float = 0.005
    method: str = field(default="ipmi", init=False)
    scope: str = field(default="wall", init=False)
    includes_network: bool = field(default=False, init=False)


@dataclass(frozen=True)
class PDUMeter(MeasurementInstrument):
    """Rack PDU metering.

    Sees node wall power plus everything else plugged into the rack
    (top-of-rack switches) plus the PDU's own distribution loss.
    """

    sample_period_s: float = 60.0
    noise_fraction: float = 0.01
    dropout_fraction: float = 0.0
    distribution_loss_fraction: float = 0.015
    method: str = field(default="pdu", init=False)
    scope: str = field(default="wall", init=False)
    includes_network: bool = field(default=True, init=False)

    def __post_init__(self):
        super().__post_init__()
        if self.distribution_loss_fraction < 0:
            raise ValueError("distribution_loss_fraction must be non-negative")

    def _site_power_series(self, trace, covered_rows, network_power_w):
        series = super()._site_power_series(trace, covered_rows, network_power_w)
        return series * (1.0 + self.distribution_loss_fraction)


@dataclass(frozen=True)
class FacilityMeter(MeasurementInstrument):
    """Machine-room level metering.

    A bulk meter on the room feed: node wall power, the network fabric,
    distribution losses, plus any additional always-on room equipment
    (``room_constant_power_w``).  Readings are cumulative meter readings, so
    per-sample noise is negligible but the result is quantised to whole kWh
    — matching how the paper's facility figures were collected.
    """

    sample_period_s: float = 900.0
    noise_fraction: float = 0.0
    dropout_fraction: float = 0.0
    distribution_loss_fraction: float = 0.015
    room_constant_power_w: float = 0.0
    method: str = field(default="facility", init=False)
    scope: str = field(default="wall", init=False)
    includes_network: bool = field(default=True, init=False)

    def __post_init__(self):
        super().__post_init__()
        if self.distribution_loss_fraction < 0:
            raise ValueError("distribution_loss_fraction must be non-negative")
        if self.room_constant_power_w < 0:
            raise ValueError("room_constant_power_w must be non-negative")

    def _site_power_series(self, trace, covered_rows, network_power_w):
        # A room meter sees every node regardless of per-node tooling.
        series = (trace.covered_series(self.scope, None)
                  + (network_power_w + self.room_constant_power_w))
        return series * (1.0 + self.distribution_loss_fraction)

    def measure(self, trace, seed=0, network_power_w=0.0):
        reading = super().measure(trace, seed=seed, network_power_w=network_power_w)
        quantised = float(np.round(reading.energy_kwh))
        return InstrumentReading(
            method=reading.method,
            energy_kwh=quantised,
            nodes_covered=trace.node_count,
            nodes_total=trace.node_count,
            scope=reading.scope,
            samples_per_node=reading.samples_per_node,
            samples_dropped=reading.samples_dropped,
            includes_network=True,
        )


__all__ = [
    "InstrumentReading",
    "MeasurementInstrument",
    "TurbostatMeter",
    "IPMIMeter",
    "PDUMeter",
    "FacilityMeter",
]
