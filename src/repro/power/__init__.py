"""Power modelling and simulated measurement instruments.

The active-energy term of the paper's model needs the energy used by every
DRI component over the snapshot.  The paper obtains it from a mixture of
facility meters, PDU readings, IPMI and Turbostat; this package provides
the simulated equivalents:

* :mod:`~repro.power.node_power` — a component-resolved node power model
  mapping utilisation to electrical draw (CPU, DRAM, storage, platform, PSU
  conversion loss).
* :mod:`~repro.power.fleet_power` — the columnar fleet power model: one
  broadcasting pass converts a whole site's utilisation matrix to the
  three measurement-scope power matrices.
* :mod:`~repro.power.traces` — per-node power traces with the component
  breakdown the different instrument scopes need.
* :mod:`~repro.power.facility` — the facility overhead model (PUE
  decomposition into cooling, power distribution and building loads).
* :mod:`~repro.power.instruments` — the four measurement instruments of the
  paper (Turbostat, IPMI, PDU, facility meter), each with an explicit
  measurement scope, cadence, noise level and coverage.
* :mod:`~repro.power.campaign` — running a set of instruments over a
  simulated site for the snapshot window and collecting per-method energy.
* :mod:`~repro.power.calibration` — inverting the node power model to find
  the utilisation that reproduces an observed average node power.
* :mod:`~repro.power.reconciliation` — comparing and adjusting readings
  taken with different scopes (the paper's Table 2 discussion).
"""

from repro.power.fleet_power import FleetPowerModel
from repro.power.node_power import NodePowerModel
from repro.power.traces import PowerBreakdownTrace
from repro.power.facility import FacilityOverheadModel, OverheadBreakdown
from repro.power.instruments import (
    FacilityMeter,
    InstrumentReading,
    IPMIMeter,
    MeasurementInstrument,
    PDUMeter,
    TurbostatMeter,
)
from repro.power.campaign import MeasurementCampaign, SiteEnergyReport
from repro.power.calibration import utilization_for_target_power
from repro.power.reconciliation import (
    MethodComparison,
    best_estimate_kwh,
    compare_methods,
    reconcile_to_reference,
)

__all__ = [
    "FleetPowerModel",
    "NodePowerModel",
    "PowerBreakdownTrace",
    "FacilityOverheadModel",
    "OverheadBreakdown",
    "MeasurementInstrument",
    "InstrumentReading",
    "TurbostatMeter",
    "IPMIMeter",
    "PDUMeter",
    "FacilityMeter",
    "MeasurementCampaign",
    "SiteEnergyReport",
    "utilization_for_target_power",
    "MethodComparison",
    "compare_methods",
    "best_estimate_kwh",
    "reconcile_to_reference",
]
