"""Per-node power traces with a component breakdown.

A :class:`PowerBreakdownTrace` exposes, on a single regular sampling grid,
one matrix per measurement scope:

* ``rapl_w`` — CPU package + DRAM (what Turbostat sees);
* ``dc_w`` — all node components on the DC side;
* ``wall_w`` — node input (AC) power, i.e. DC plus PSU losses (what IPMI
  and, with distribution losses added, PDUs see).

It is produced from a :class:`~repro.workload.utilization.UtilizationTrace`
and a per-node :class:`~repro.power.node_power.NodePowerModel`, and consumed
by the measurement instruments.

Internally the trace has two representations:

**columnar/lazy** (:meth:`from_utilization`, the engine default) — the
utilisation matrix plus a :class:`~repro.power.fleet_power.FleetPowerModel`
holding per-node affine coefficients.  Because every instrument ultimately
*reduces* the fleet matrix (a site series over covered nodes, a total
energy, per-node energies), the reductions are evaluated directly from the
coefficients — ``sum_i c_i (a_i + b_i u_i(t))`` is one vector contraction
against the utilisation matrix — and a full per-scope power matrix is only
materialised if :meth:`scope_matrix` is explicitly asked for it.

**materialised** (the public constructor and
:meth:`from_utilization_loop`, the per-node oracle) — three explicit
power matrices, validated for shape, sign and scope ordering.  The oracle
path cross-validates the lazy engine in the fleet-engine benchmark and
equivalence tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.power.fleet_power import FleetPowerModel, coverage_vector
from repro.power.node_power import NodePowerModel
from repro.timeseries.series import TimeSeries
from repro.units.constants import JOULES_PER_KWH
from repro.workload.utilization import UtilizationTrace

_SCOPES = ("rapl", "dc", "wall")


class PowerBreakdownTrace:
    """Scope-resolved power traces for a set of nodes on one sampling grid."""

    __slots__ = ("_start", "_step", "_node_ids", "_matrices", "_util",
                 "_model", "_series_cache")

    def __init__(
        self,
        start: float,
        step: float,
        node_ids: Sequence[str],
        rapl_w: np.ndarray,
        dc_w: np.ndarray,
        wall_w: np.ndarray,
    ):
        rapl_w = np.asarray(rapl_w, dtype=np.float64)
        dc_w = np.asarray(dc_w, dtype=np.float64)
        wall_w = np.asarray(wall_w, dtype=np.float64)
        expected = (len(node_ids), rapl_w.shape[1] if rapl_w.ndim == 2 else -1)
        for name, matrix in (("rapl_w", rapl_w), ("dc_w", dc_w), ("wall_w", wall_w)):
            if matrix.ndim != 2 or matrix.shape != expected:
                raise ValueError(f"{name} must have shape {expected}, got {matrix.shape}")
            if (matrix < 0).any():
                raise ValueError(f"{name} must be non-negative")
        if step <= 0:
            raise ValueError("step must be positive")
        if not (rapl_w <= dc_w + 1e-9).all():
            raise ValueError("RAPL-visible power cannot exceed DC power")
        if not (dc_w <= wall_w + 1e-9).all():
            raise ValueError("DC power cannot exceed wall power")
        self._start = float(start)
        self._step = float(step)
        self._node_ids = list(node_ids)
        self._matrices: Dict[str, np.ndarray] = {
            "rapl": rapl_w, "dc": dc_w, "wall": wall_w,
        }
        self._util: Optional[np.ndarray] = None
        self._model: Optional[FleetPowerModel] = None
        self._series_cache: Dict[tuple, np.ndarray] = {}

    # -- construction ---------------------------------------------------------------

    @classmethod
    def from_utilization(
        cls,
        trace: UtilizationTrace,
        models: Sequence[NodePowerModel],
    ) -> "PowerBreakdownTrace":
        """Convert a utilisation trace to power using one model per node.

        ``models`` must be ordered like ``trace.node_ids``; pass a list with
        a single repeated model (``[model] * n``) for homogeneous sites.

        This is the columnar engine: the fleet's affine power coefficients
        are computed once and reductions (site series, energies) evaluate
        straight off the utilisation matrix; per-scope power matrices are
        materialised only on explicit :meth:`scope_matrix` access.  Agrees
        with the per-node oracle (:meth:`from_utilization_loop`) to within
        a few float64 ulp.
        """
        if len(models) != trace.node_count:
            raise ValueError(
                f"need one power model per node: {trace.node_count} nodes, "
                f"{len(models)} models"
            )
        obj = cls.__new__(cls)
        obj._start = trace.start
        obj._step = trace.step
        obj._node_ids = trace.node_ids
        obj._matrices = {}
        obj._util = trace.matrix
        obj._model = FleetPowerModel(models)
        obj._series_cache = {}
        return obj

    @classmethod
    def from_utilization_loop(
        cls,
        trace: UtilizationTrace,
        models: Sequence[NodePowerModel],
    ) -> "PowerBreakdownTrace":
        """The seed per-node conversion, retained as the oracle.

        Evaluates each node's power model against its own matrix row, one
        node at a time, materialising all three scope matrices up front;
        used by the fleet-engine benchmark and the equivalence tests to
        cross-validate :meth:`from_utilization`.
        """
        if len(models) != trace.node_count:
            raise ValueError(
                f"need one power model per node: {trace.node_count} nodes, "
                f"{len(models)} models"
            )
        util = trace.matrix
        rapl = np.empty_like(util)
        dc = np.empty_like(util)
        wall = np.empty_like(util)
        for row, model in enumerate(models):
            rapl[row] = model.rapl_visible_power_w(util[row])
            dc[row] = model.dc_power_w(util[row])
            wall[row] = model.wall_power_w(util[row])
        return cls(trace.start, trace.step, trace.node_ids, rapl, dc, wall)

    # -- accessors -------------------------------------------------------------------

    @property
    def start(self) -> float:
        return self._start

    @property
    def step(self) -> float:
        return self._step

    @property
    def node_ids(self) -> List[str]:
        return list(self._node_ids)

    @property
    def node_count(self) -> int:
        return len(self._node_ids)

    @property
    def sample_count(self) -> int:
        if self._util is not None:
            return int(self._util.shape[1])
        return int(self._matrices["wall"].shape[1])

    @property
    def duration_s(self) -> float:
        return self._step * self.sample_count

    def _check_scope(self, scope: str) -> None:
        if scope not in _SCOPES:
            raise ValueError(
                f"unknown scope {scope!r}; expected rapl, dc or wall")

    def scope_matrix(self, scope: str) -> np.ndarray:
        """The power matrix for a named scope (``rapl``, ``dc`` or ``wall``).

        On a columnar trace the matrix is materialised (and kept) on first
        access; the reduction helpers below never need it.
        """
        self._check_scope(scope)
        matrix = self._matrices.get(scope)
        if matrix is None:  # columnar representation: materialise on demand
            a, b = self._model.affine(scope)
            matrix = np.multiply(b, self._util)
            matrix += a
            self._matrices[scope] = matrix
        view = matrix.view()
        view.flags.writeable = False
        return view

    # -- reductions (the instruments' fast path) -------------------------------------

    def _coverage_vector(
        self, covered_rows: Optional[np.ndarray]
    ) -> Optional[np.ndarray]:
        """Per-node multiplicity of the covered rows, or ``None`` for all.

        Accepts an index array (duplicates count multiply, matching fancy
        row indexing) or a boolean mask over the nodes.  Delegates to the
        shared :func:`~repro.power.fleet_power.coverage_vector`, which the
        sharded trace uses too.
        """
        return coverage_vector(covered_rows, self.node_count)

    def _covered_values(self, scope: str,
                        covered_rows: Optional[np.ndarray]) -> np.ndarray:
        """Summed power over the covered nodes, one value per sample."""
        self._check_scope(scope)
        coverage = self._coverage_vector(covered_rows)
        key = (scope, None if coverage is None else coverage.tobytes())
        cached = self._series_cache.get(key)
        if cached is not None:
            return cached
        if self._util is not None and scope not in self._matrices:
            # Columnar: sum_i c_i (a_i + b_i u_i(t)) without materialising.
            a, b = self._model.affine(scope)
            if coverage is None:
                values = b[:, 0] @ self._util + a.sum()
            else:
                values = (coverage * b[:, 0]) @ self._util + coverage @ a[:, 0]
        else:
            matrix = self.scope_matrix(scope)
            if coverage is None:
                values = matrix.sum(axis=0)
            else:
                values = coverage @ matrix
        self._series_cache[key] = values
        return values

    def covered_series(self, scope: str = "wall",
                       covered_rows: Optional[np.ndarray] = None) -> TimeSeries:
        """Summed power of the covered nodes over time (all nodes by default)."""
        return TimeSeries(self._start, self._step,
                          self._covered_values(scope, covered_rows))

    def total_series(self, scope: str = "wall") -> TimeSeries:
        """Site-total power over time for the given scope."""
        return self.covered_series(scope, None)

    def node_series(self, node_id: str, scope: str = "wall") -> TimeSeries:
        """One node's power over time for the given scope."""
        try:
            row = self._node_ids.index(node_id)
        except ValueError:
            raise KeyError(f"no node {node_id!r} in power trace") from None
        self._check_scope(scope)
        if self._util is not None and scope not in self._matrices:
            a, b = self._model.affine(scope)
            return TimeSeries(self._start, self._step,
                              a[row, 0] + b[row, 0] * self._util[row])
        return TimeSeries(self._start, self._step, self.scope_matrix(scope)[row])

    # -- aggregates ------------------------------------------------------------------

    def total_energy_kwh(self, scope: str = "wall") -> float:
        """True total energy in kWh for the given scope (no instrument effects)."""
        values = self._covered_values(scope, None)
        return float(values.sum() * self._step / JOULES_PER_KWH)

    def per_node_energy_kwh(self, scope: str = "wall") -> Dict[str, float]:
        """True per-node energy in kWh for the given scope."""
        self._check_scope(scope)
        if self._util is not None and scope not in self._matrices:
            a, b = self._model.affine(scope)
            energies = (a[:, 0] * self.sample_count
                        + b[:, 0] * self._util.sum(axis=1))
            energies *= self._step / JOULES_PER_KWH
        else:
            matrix = self.scope_matrix(scope)
            energies = matrix.sum(axis=1) * self._step / JOULES_PER_KWH
        return dict(zip(self._node_ids, energies.tolist()))

    def mean_node_power_w(self, scope: str = "wall") -> float:
        """Average per-node power across the whole trace."""
        values = self._covered_values(scope, None)
        return float(values.sum() / (self.node_count * self.sample_count))


__all__ = ["PowerBreakdownTrace"]
