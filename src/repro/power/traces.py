"""Per-node power traces with a component breakdown.

A :class:`PowerBreakdownTrace` holds, on a single regular sampling grid, one
matrix per measurement scope:

* ``rapl_w`` — CPU package + DRAM (what Turbostat sees);
* ``dc_w`` — all node components on the DC side;
* ``wall_w`` — node input (AC) power, i.e. DC plus PSU losses (what IPMI
  and, with distribution losses added, PDUs see).

It is produced from a :class:`~repro.workload.utilization.UtilizationTrace`
and a per-node :class:`~repro.power.node_power.NodePowerModel`, and consumed
by the measurement instruments.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.power.node_power import NodePowerModel
from repro.timeseries.series import TimeSeries
from repro.units.constants import JOULES_PER_KWH
from repro.workload.utilization import UtilizationTrace


class PowerBreakdownTrace:
    """Scope-resolved power traces for a set of nodes on one sampling grid."""

    __slots__ = ("_start", "_step", "_node_ids", "_rapl", "_dc", "_wall")

    def __init__(
        self,
        start: float,
        step: float,
        node_ids: Sequence[str],
        rapl_w: np.ndarray,
        dc_w: np.ndarray,
        wall_w: np.ndarray,
    ):
        rapl_w = np.asarray(rapl_w, dtype=np.float64)
        dc_w = np.asarray(dc_w, dtype=np.float64)
        wall_w = np.asarray(wall_w, dtype=np.float64)
        expected = (len(node_ids), rapl_w.shape[1] if rapl_w.ndim == 2 else -1)
        for name, matrix in (("rapl_w", rapl_w), ("dc_w", dc_w), ("wall_w", wall_w)):
            if matrix.ndim != 2 or matrix.shape != expected:
                raise ValueError(f"{name} must have shape {expected}, got {matrix.shape}")
            if (matrix < 0).any():
                raise ValueError(f"{name} must be non-negative")
        if step <= 0:
            raise ValueError("step must be positive")
        if not (rapl_w <= dc_w + 1e-9).all():
            raise ValueError("RAPL-visible power cannot exceed DC power")
        if not (dc_w <= wall_w + 1e-9).all():
            raise ValueError("DC power cannot exceed wall power")
        self._start = float(start)
        self._step = float(step)
        self._node_ids = list(node_ids)
        self._rapl = rapl_w
        self._dc = dc_w
        self._wall = wall_w

    # -- construction ---------------------------------------------------------------

    @classmethod
    def from_utilization(
        cls,
        trace: UtilizationTrace,
        models: Sequence[NodePowerModel],
    ) -> "PowerBreakdownTrace":
        """Convert a utilisation trace to power using one model per node.

        ``models`` must be ordered like ``trace.node_ids``; pass a list with
        a single repeated model (``[model] * n``) for homogeneous sites.
        """
        if len(models) != trace.node_count:
            raise ValueError(
                f"need one power model per node: {trace.node_count} nodes, "
                f"{len(models)} models"
            )
        util = trace.matrix
        rapl = np.empty_like(util)
        dc = np.empty_like(util)
        wall = np.empty_like(util)
        for row, model in enumerate(models):
            rapl[row] = model.rapl_visible_power_w(util[row])
            dc[row] = model.dc_power_w(util[row])
            wall[row] = model.wall_power_w(util[row])
        return cls(trace.start, trace.step, trace.node_ids, rapl, dc, wall)

    # -- accessors -------------------------------------------------------------------

    @property
    def start(self) -> float:
        return self._start

    @property
    def step(self) -> float:
        return self._step

    @property
    def node_ids(self) -> List[str]:
        return list(self._node_ids)

    @property
    def node_count(self) -> int:
        return len(self._node_ids)

    @property
    def sample_count(self) -> int:
        return int(self._wall.shape[1])

    @property
    def duration_s(self) -> float:
        return self._step * self.sample_count

    def scope_matrix(self, scope: str) -> np.ndarray:
        """The power matrix for a named scope (``rapl``, ``dc`` or ``wall``)."""
        try:
            matrix = {"rapl": self._rapl, "dc": self._dc, "wall": self._wall}[scope]
        except KeyError:
            raise ValueError(f"unknown scope {scope!r}; expected rapl, dc or wall") from None
        view = matrix.view()
        view.flags.writeable = False
        return view

    # -- aggregates ------------------------------------------------------------------

    def total_series(self, scope: str = "wall") -> TimeSeries:
        """Site-total power over time for the given scope."""
        matrix = self.scope_matrix(scope)
        return TimeSeries(self._start, self._step, matrix.sum(axis=0))

    def node_series(self, node_id: str, scope: str = "wall") -> TimeSeries:
        """One node's power over time for the given scope."""
        try:
            row = self._node_ids.index(node_id)
        except ValueError:
            raise KeyError(f"no node {node_id!r} in power trace") from None
        return TimeSeries(self._start, self._step, self.scope_matrix(scope)[row])

    def total_energy_kwh(self, scope: str = "wall") -> float:
        """True total energy in kWh for the given scope (no instrument effects)."""
        matrix = self.scope_matrix(scope)
        return float(matrix.sum() * self._step / JOULES_PER_KWH)

    def per_node_energy_kwh(self, scope: str = "wall") -> Dict[str, float]:
        """True per-node energy in kWh for the given scope."""
        matrix = self.scope_matrix(scope)
        energies = matrix.sum(axis=1) * self._step / JOULES_PER_KWH
        return dict(zip(self._node_ids, energies.tolist()))

    def mean_node_power_w(self, scope: str = "wall") -> float:
        """Average per-node power across the whole trace."""
        return float(self.scope_matrix(scope).mean())


__all__ = ["PowerBreakdownTrace"]
