"""Facility overhead model (PUE decomposition).

None of the IRIS facilities could provide cooling or infrastructure
electricity figures, so the paper scales the measured IT energy by a range
of PUE values (1.1 / 1.3 / 1.5).  This module implements that scaling and —
for the extension benches — decomposes the overhead into the three facility
terms the model names (equation split of ``E_facilities``):

* cooling (chillers, CRAC units, pumps);
* power distribution (transformer and UPS losses);
* the wider building load (lighting, security, office space).

The default split follows typical data-centre energy audits: roughly 70% of
the overhead is cooling, 20% distribution losses and 10% building load, but
every fraction is configurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.units.quantities import Energy


@dataclass(frozen=True)
class OverheadBreakdown:
    """Facility overhead energy split into its components (kWh)."""

    cooling_kwh: float
    power_distribution_kwh: float
    building_kwh: float

    def __post_init__(self):
        for name in ("cooling_kwh", "power_distribution_kwh", "building_kwh"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def total_kwh(self) -> float:
        return self.cooling_kwh + self.power_distribution_kwh + self.building_kwh

    def as_dict(self) -> Dict[str, float]:
        return {
            "cooling_kwh": self.cooling_kwh,
            "power_distribution_kwh": self.power_distribution_kwh,
            "building_kwh": self.building_kwh,
            "total_kwh": self.total_kwh,
        }


@dataclass(frozen=True)
class FacilityOverheadModel:
    """PUE-based facility overhead model.

    Parameters
    ----------
    pue:
        Power Usage Effectiveness; total facility energy is
        ``pue * it_energy``.
    cooling_fraction / distribution_fraction / building_fraction:
        How the overhead (``(pue - 1) * it_energy``) is split; the three
        fractions must sum to 1.
    """

    pue: float = 1.3
    cooling_fraction: float = 0.7
    distribution_fraction: float = 0.2
    building_fraction: float = 0.1

    def __post_init__(self):
        if self.pue < 1.0:
            raise ValueError(f"PUE must be at least 1.0, got {self.pue!r}")
        fractions = (
            self.cooling_fraction,
            self.distribution_fraction,
            self.building_fraction,
        )
        if any(fraction < 0 for fraction in fractions):
            raise ValueError("overhead fractions must be non-negative")
        if abs(sum(fractions) - 1.0) > 1e-6:
            raise ValueError(
                f"overhead fractions must sum to 1.0, got {sum(fractions):.6f}"
            )

    # -- scalar (kWh) interface -------------------------------------------------

    def total_facility_kwh(self, it_kwh: float) -> float:
        """Total facility energy (IT plus overhead) for the given IT energy."""
        if it_kwh < 0:
            raise ValueError("it_kwh must be non-negative")
        return it_kwh * self.pue

    def overhead_kwh(self, it_kwh: float) -> float:
        """Overhead energy only (cooling + distribution + building)."""
        if it_kwh < 0:
            raise ValueError("it_kwh must be non-negative")
        return it_kwh * (self.pue - 1.0)

    def breakdown(self, it_kwh: float) -> OverheadBreakdown:
        """Split the overhead for ``it_kwh`` of IT energy into components."""
        overhead = self.overhead_kwh(it_kwh)
        return OverheadBreakdown(
            cooling_kwh=overhead * self.cooling_fraction,
            power_distribution_kwh=overhead * self.distribution_fraction,
            building_kwh=overhead * self.building_fraction,
        )

    # -- quantity interface -------------------------------------------------------

    def total_facility_energy(self, it_energy: Energy) -> Energy:
        """Quantity version of :meth:`total_facility_kwh`."""
        return Energy.from_kwh(self.total_facility_kwh(it_energy.kwh))

    def overhead_energy(self, it_energy: Energy) -> Energy:
        """Quantity version of :meth:`overhead_kwh`."""
        return Energy.from_kwh(self.overhead_kwh(it_energy.kwh))


__all__ = ["FacilityOverheadModel", "OverheadBreakdown"]
