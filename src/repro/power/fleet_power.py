"""Vectorised fleet-wide power conversion.

A :class:`FleetPowerModel` holds the per-node power curves of a whole site
in columnar (affine-coefficient) form and maps a full
``(n_nodes, n_samples)`` utilisation matrix to the three measurement-scope
power matrices (RAPL, DC, wall) in one broadcasting pass per scope — no
per-node Python loop, no repeated re-evaluation of shared sub-expressions.

Every component curve of :class:`~repro.power.node_power.NodePowerModel`
is affine in utilisation (``power = a + b * u``), so each scope collapses
to a single per-node intercept/slope pair computed once at construction:

==========  =============================  =============================
component   intercept ``a`` (W)            slope ``b`` (W per unit u)
==========  =============================  =============================
CPU         ``tdp * idle_fraction``        ``tdp * (1 - idle_fraction)``
DRAM        ``full * idle_fraction``       ``full * (1 - idle_fraction)``
storage     ``idle``                       ``active - idle``
platform    ``base + nic``                 0
GPU         ``tdp * 0.1``                  ``tdp * 0.9``
==========  =============================  =============================

``rapl = cpu + dram``, ``dc`` adds storage/platform/GPU, and ``wall``
divides the dc coefficients by the PSU efficiency.  The evaluation agrees
with the per-node oracle
(:meth:`~repro.power.traces.PowerBreakdownTrace.from_utilization_loop`) to
within a few float64 ulp (the factored coefficients round differently at
the ~1e-16 relative level); the fleet-engine benchmark pins the agreement
at ≤1e-9 relative.

Because the slopes are non-negative, utilisation lies in [0, 1], storage
idle power never exceeds active power, and PSU efficiency lies in
(0.5, 1.0] (all enforced by the inventory specs), the resulting matrices
satisfy ``0 <= rapl <= dc <= wall`` *by construction* — which is what lets
:meth:`~repro.power.traces.PowerBreakdownTrace.from_utilization` skip the
re-validation the generic constructor performs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.power.node_power import NodePowerModel
from repro.timeseries.series import TimeSeries
from repro.units.constants import JOULES_PER_KWH
from repro.workload.fleet import ShardedFleetUtilization

_SCOPES = ("rapl", "dc", "wall")


def coverage_vector(covered_rows: Optional[np.ndarray],
                    node_count: int) -> Optional[np.ndarray]:
    """Per-node multiplicity of the covered rows, or ``None`` for all nodes.

    Accepts an index array (duplicates count multiply, matching fancy row
    indexing) or a boolean mask over the nodes.  Shared by the dense
    :class:`~repro.power.traces.PowerBreakdownTrace` and the sharded trace
    below, so both paths agree exactly on what an instrument's coverage
    means.
    """
    if covered_rows is None:
        return None
    rows = np.asarray(covered_rows)
    if rows.dtype == np.bool_:
        if rows.shape != (node_count,):
            raise ValueError(
                f"boolean coverage mask must have shape "
                f"({node_count},), got {rows.shape}")
        rows = np.nonzero(rows)[0]
    elif rows.size and (rows.min() < 0 or rows.max() >= node_count):
        raise IndexError(
            f"covered row indices must lie in [0, {node_count})")
    if (rows.size == node_count
            and np.array_equal(rows, np.arange(node_count))):
        return None
    coverage = np.zeros(node_count, dtype=np.float64)
    np.add.at(coverage, rows, 1.0)
    return coverage


class FleetPowerModel:
    """Per-node power curves for a whole fleet, evaluated columnar-ly.

    Parameters
    ----------
    models:
        One :class:`NodePowerModel` per node, ordered like the rows of the
        utilisation matrices this model will be applied to.
    """

    __slots__ = ("_n", "_rapl_a", "_rapl_b", "_dc_a", "_dc_b",
                 "_wall_a", "_wall_b")

    def __init__(self, models: Sequence[NodePowerModel]):
        if not models:
            raise ValueError("a fleet power model needs at least one node model")
        self._n = len(models)

        def column(values) -> np.ndarray:
            return np.array(values, dtype=np.float64).reshape(self._n, 1)

        cpu_a = column([m.spec.cpu_tdp_w * m.cpu_idle_fraction for m in models])
        cpu_b = column([m.spec.cpu_tdp_w * (1.0 - m.cpu_idle_fraction)
                        for m in models])
        dram_a = column([m.spec.memory_power_w * m.dram_idle_fraction
                         for m in models])
        dram_b = column([m.spec.memory_power_w * (1.0 - m.dram_idle_fraction)
                         for m in models])
        sto_a = column([m.spec.storage_idle_power_w for m in models])
        sto_b = column([m.spec.storage_active_power_w
                        - m.spec.storage_idle_power_w for m in models])
        plat_a = column([m.spec.base_power_w + m.spec.nic_power_w
                         for m in models])
        gpu_a = column([m.spec.gpu_tdp_w * 0.1 for m in models])
        gpu_b = column([m.spec.gpu_tdp_w * 0.9 for m in models])
        psu = column([m.spec.psu_efficiency for m in models])

        self._rapl_a = cpu_a + dram_a
        self._rapl_b = cpu_b + dram_b
        self._dc_a = self._rapl_a + sto_a + plat_a + gpu_a
        self._dc_b = self._rapl_b + sto_b + gpu_b
        self._wall_a = self._dc_a / psu
        self._wall_b = self._dc_b / psu

    @property
    def node_count(self) -> int:
        return self._n

    def affine(self, scope: str) -> Tuple[np.ndarray, np.ndarray]:
        """The per-node ``(intercept, slope)`` columns of a named scope."""
        try:
            return {
                "rapl": (self._rapl_a, self._rapl_b),
                "dc": (self._dc_a, self._dc_b),
                "wall": (self._wall_a, self._wall_b),
            }[scope]
        except KeyError:
            raise ValueError(
                f"unknown scope {scope!r}; expected rapl, dc or wall") from None

    def _check(self, utilization: np.ndarray) -> np.ndarray:
        u = np.asarray(utilization, dtype=np.float64)
        if u.ndim != 2 or u.shape[0] != self._n:
            raise ValueError(
                f"utilisation matrix must have shape ({self._n}, n_samples), "
                f"got {u.shape}")
        return u

    @staticmethod
    def _affine(a: np.ndarray, b: np.ndarray, u: np.ndarray) -> np.ndarray:
        out = np.multiply(b, u)
        out += a
        return out

    def scope_matrices(
        self, utilization: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(rapl_w, dc_w, wall_w)`` for the whole fleet, two passes each."""
        u = self._check(utilization)
        return (
            self._affine(self._rapl_a, self._rapl_b, u),
            self._affine(self._dc_a, self._dc_b, u),
            self._affine(self._wall_a, self._wall_b, u),
        )

    def rapl_w(self, utilization: np.ndarray) -> np.ndarray:
        """RAPL-visible (CPU package + DRAM) power matrix."""
        u = self._check(utilization)
        return self._affine(self._rapl_a, self._rapl_b, u)

    def dc_w(self, utilization: np.ndarray) -> np.ndarray:
        """Total DC-side power matrix."""
        u = self._check(utilization)
        return self._affine(self._dc_a, self._dc_b, u)

    def wall_w(self, utilization: np.ndarray) -> np.ndarray:
        """AC (wall) power matrix."""
        u = self._check(utilization)
        return self._affine(self._wall_a, self._wall_b, u)

    def idle_wall_power_w(self) -> np.ndarray:
        """Each node's wall power at zero utilisation, shape ``(n_nodes,)``."""
        return self._wall_a[:, 0].copy()

    def max_wall_power_w(self) -> np.ndarray:
        """Each node's wall power at full utilisation, shape ``(n_nodes,)``."""
        return (self._wall_a + self._wall_b)[:, 0]


class ShardedPowerBreakdownTrace:
    """Scope-resolved power over a sharded fleet, contracted shard by shard.

    The out-of-core sibling of
    :meth:`~repro.power.traces.PowerBreakdownTrace.from_utilization`: it
    pairs a :class:`~repro.workload.fleet.ShardedFleetUtilization` with a
    :class:`FleetPowerModel` and evaluates every reduction the instruments
    consume — covered-site series, total series, per-node energies — as a
    streaming contraction ``sum_i c_i (a_i + b_i u_i(t))`` over one shard's
    memmap at a time.  No power matrix (and no dense utilisation matrix)
    ever exists in memory; peak footprint is one shard.

    Accumulation is always float64, whatever the shard storage dtype:
    numpy's matmul promotes a float32 memmap block against the float64
    coefficient vectors, so opt-in float32 *storage* halves the disk/page
    footprint without compounding reduction error.
    """

    __slots__ = ("_store", "_model", "_series_cache")

    def __init__(self, store: ShardedFleetUtilization,
                 models: Sequence[NodePowerModel]):
        if len(models) != store.node_count:
            raise ValueError(
                f"need one power model per node: {store.node_count} nodes, "
                f"{len(models)} models")
        self._store = store
        self._model = FleetPowerModel(models)
        self._series_cache: Dict[tuple, np.ndarray] = {}

    # -- grid accessors (mirroring PowerBreakdownTrace) --------------------------------

    @property
    def store(self) -> ShardedFleetUtilization:
        """The underlying shard store (read-only access for diagnostics)."""
        return self._store

    @property
    def start(self) -> float:
        return self._store.start

    @property
    def step(self) -> float:
        return self._store.step

    @property
    def node_ids(self) -> List[str]:
        return self._store.node_ids

    @property
    def node_count(self) -> int:
        return self._store.node_count

    @property
    def sample_count(self) -> int:
        return self._store.sample_count

    @property
    def duration_s(self) -> float:
        return self._store.duration_s

    def _check_scope(self, scope: str) -> None:
        if scope not in _SCOPES:
            raise ValueError(
                f"unknown scope {scope!r}; expected rapl, dc or wall")

    # -- streaming reductions ----------------------------------------------------------

    def _covered_values(self, scope: str,
                        covered_rows: Optional[np.ndarray]) -> np.ndarray:
        """Summed power over the covered nodes, one value per sample."""
        self._check_scope(scope)
        coverage = coverage_vector(covered_rows, self.node_count)
        key = (scope, None if coverage is None else coverage.tobytes())
        cached = self._series_cache.get(key)
        if cached is not None:
            return cached
        a, b = self._model.affine(scope)
        slope = b[:, 0] if coverage is None else coverage * b[:, 0]
        values = np.zeros(self.sample_count, dtype=np.float64)
        for lo, hi, stored in self._store.iter_shards():
            if self._store.layout == "interval-major":
                values += stored @ slope[lo:hi]
            else:
                values += slope[lo:hi] @ stored
        if coverage is None:
            values += a.sum()
        else:
            values += coverage @ a[:, 0]
        self._series_cache[key] = values
        return values

    def covered_series(self, scope: str = "wall",
                       covered_rows: Optional[np.ndarray] = None) -> TimeSeries:
        """Summed power of the covered nodes over time (all nodes by default)."""
        return TimeSeries(self.start, self.step,
                          self._covered_values(scope, covered_rows))

    def total_series(self, scope: str = "wall") -> TimeSeries:
        """Site-total power over time for the given scope."""
        return self.covered_series(scope, None)

    def node_series(self, node_id: str, scope: str = "wall") -> TimeSeries:
        """One node's power over time (reads one shard row)."""
        self._check_scope(scope)
        row = self._store.row_of(node_id)
        a, b = self._model.affine(scope)
        util = self._store.node_series(node_id).values
        return TimeSeries(self.start, self.step,
                          a[row, 0] + b[row, 0] * util)

    # -- aggregates ------------------------------------------------------------------

    def total_energy_kwh(self, scope: str = "wall") -> float:
        """True total energy in kWh for the given scope (no instrument effects)."""
        values = self._covered_values(scope, None)
        return float(values.sum() * self.step / JOULES_PER_KWH)

    def per_node_energy_kwh(self, scope: str = "wall") -> Dict[str, float]:
        """True per-node energy in kWh for the given scope (streamed)."""
        self._check_scope(scope)
        a, b = self._model.affine(scope)
        row_sums = np.empty(self.node_count, dtype=np.float64)
        for lo, hi, stored in self._store.iter_shards():
            axis = 0 if self._store.layout == "interval-major" else 1
            row_sums[lo:hi] = stored.sum(axis=axis, dtype=np.float64)
        energies = a[:, 0] * self.sample_count + b[:, 0] * row_sums
        energies *= self.step / JOULES_PER_KWH
        return dict(zip(self._store.node_ids, energies.tolist()))

    def mean_node_power_w(self, scope: str = "wall") -> float:
        """Average per-node power across the whole trace."""
        values = self._covered_values(scope, None)
        return float(values.sum() / (self.node_count * self.sample_count))


__all__ = ["FleetPowerModel", "ShardedPowerBreakdownTrace", "coverage_vector"]
