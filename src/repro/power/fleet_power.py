"""Vectorised fleet-wide power conversion.

A :class:`FleetPowerModel` holds the per-node power curves of a whole site
in columnar (affine-coefficient) form and maps a full
``(n_nodes, n_samples)`` utilisation matrix to the three measurement-scope
power matrices (RAPL, DC, wall) in one broadcasting pass per scope — no
per-node Python loop, no repeated re-evaluation of shared sub-expressions.

Every component curve of :class:`~repro.power.node_power.NodePowerModel`
is affine in utilisation (``power = a + b * u``), so each scope collapses
to a single per-node intercept/slope pair computed once at construction:

==========  =============================  =============================
component   intercept ``a`` (W)            slope ``b`` (W per unit u)
==========  =============================  =============================
CPU         ``tdp * idle_fraction``        ``tdp * (1 - idle_fraction)``
DRAM        ``full * idle_fraction``       ``full * (1 - idle_fraction)``
storage     ``idle``                       ``active - idle``
platform    ``base + nic``                 0
GPU         ``tdp * 0.1``                  ``tdp * 0.9``
==========  =============================  =============================

``rapl = cpu + dram``, ``dc`` adds storage/platform/GPU, and ``wall``
divides the dc coefficients by the PSU efficiency.  The evaluation agrees
with the per-node oracle
(:meth:`~repro.power.traces.PowerBreakdownTrace.from_utilization_loop`) to
within a few float64 ulp (the factored coefficients round differently at
the ~1e-16 relative level); the fleet-engine benchmark pins the agreement
at ≤1e-9 relative.

Because the slopes are non-negative, utilisation lies in [0, 1], storage
idle power never exceeds active power, and PSU efficiency lies in
(0.5, 1.0] (all enforced by the inventory specs), the resulting matrices
satisfy ``0 <= rapl <= dc <= wall`` *by construction* — which is what lets
:meth:`~repro.power.traces.PowerBreakdownTrace.from_utilization` skip the
re-validation the generic constructor performs.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.power.node_power import NodePowerModel


class FleetPowerModel:
    """Per-node power curves for a whole fleet, evaluated columnar-ly.

    Parameters
    ----------
    models:
        One :class:`NodePowerModel` per node, ordered like the rows of the
        utilisation matrices this model will be applied to.
    """

    __slots__ = ("_n", "_rapl_a", "_rapl_b", "_dc_a", "_dc_b",
                 "_wall_a", "_wall_b")

    def __init__(self, models: Sequence[NodePowerModel]):
        if not models:
            raise ValueError("a fleet power model needs at least one node model")
        self._n = len(models)

        def column(values) -> np.ndarray:
            return np.array(values, dtype=np.float64).reshape(self._n, 1)

        cpu_a = column([m.spec.cpu_tdp_w * m.cpu_idle_fraction for m in models])
        cpu_b = column([m.spec.cpu_tdp_w * (1.0 - m.cpu_idle_fraction)
                        for m in models])
        dram_a = column([m.spec.memory_power_w * m.dram_idle_fraction
                         for m in models])
        dram_b = column([m.spec.memory_power_w * (1.0 - m.dram_idle_fraction)
                         for m in models])
        sto_a = column([m.spec.storage_idle_power_w for m in models])
        sto_b = column([m.spec.storage_active_power_w
                        - m.spec.storage_idle_power_w for m in models])
        plat_a = column([m.spec.base_power_w + m.spec.nic_power_w
                         for m in models])
        gpu_a = column([m.spec.gpu_tdp_w * 0.1 for m in models])
        gpu_b = column([m.spec.gpu_tdp_w * 0.9 for m in models])
        psu = column([m.spec.psu_efficiency for m in models])

        self._rapl_a = cpu_a + dram_a
        self._rapl_b = cpu_b + dram_b
        self._dc_a = self._rapl_a + sto_a + plat_a + gpu_a
        self._dc_b = self._rapl_b + sto_b + gpu_b
        self._wall_a = self._dc_a / psu
        self._wall_b = self._dc_b / psu

    @property
    def node_count(self) -> int:
        return self._n

    def affine(self, scope: str) -> Tuple[np.ndarray, np.ndarray]:
        """The per-node ``(intercept, slope)`` columns of a named scope."""
        try:
            return {
                "rapl": (self._rapl_a, self._rapl_b),
                "dc": (self._dc_a, self._dc_b),
                "wall": (self._wall_a, self._wall_b),
            }[scope]
        except KeyError:
            raise ValueError(
                f"unknown scope {scope!r}; expected rapl, dc or wall") from None

    def _check(self, utilization: np.ndarray) -> np.ndarray:
        u = np.asarray(utilization, dtype=np.float64)
        if u.ndim != 2 or u.shape[0] != self._n:
            raise ValueError(
                f"utilisation matrix must have shape ({self._n}, n_samples), "
                f"got {u.shape}")
        return u

    @staticmethod
    def _affine(a: np.ndarray, b: np.ndarray, u: np.ndarray) -> np.ndarray:
        out = np.multiply(b, u)
        out += a
        return out

    def scope_matrices(
        self, utilization: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(rapl_w, dc_w, wall_w)`` for the whole fleet, two passes each."""
        u = self._check(utilization)
        return (
            self._affine(self._rapl_a, self._rapl_b, u),
            self._affine(self._dc_a, self._dc_b, u),
            self._affine(self._wall_a, self._wall_b, u),
        )

    def rapl_w(self, utilization: np.ndarray) -> np.ndarray:
        """RAPL-visible (CPU package + DRAM) power matrix."""
        u = self._check(utilization)
        return self._affine(self._rapl_a, self._rapl_b, u)

    def dc_w(self, utilization: np.ndarray) -> np.ndarray:
        """Total DC-side power matrix."""
        u = self._check(utilization)
        return self._affine(self._dc_a, self._dc_b, u)

    def wall_w(self, utilization: np.ndarray) -> np.ndarray:
        """AC (wall) power matrix."""
        u = self._check(utilization)
        return self._affine(self._wall_a, self._wall_b, u)

    def idle_wall_power_w(self) -> np.ndarray:
        """Each node's wall power at zero utilisation, shape ``(n_nodes,)``."""
        return self._wall_a[:, 0].copy()

    def max_wall_power_w(self) -> np.ndarray:
        """Each node's wall power at full utilisation, shape ``(n_nodes,)``."""
        return (self._wall_a + self._wall_b)[:, 0]


__all__ = ["FleetPowerModel"]
