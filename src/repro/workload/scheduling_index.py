"""Index structures backing the ``indexed`` scheduler engine.

The reference scheduling loop (:meth:`~repro.workload.scheduler.BackfillScheduler.run`
with ``scheduler_engine="reference"``) is dominated by three superlinear
terms at fleet scale:

* every placement attempt scans all N nodes
  (``np.nonzero(free >= cores)[0]``);
* every FCFS start pays ``list.pop(0)`` and every backfill start pays
  ``list.remove`` on the pending queue;
* every blocked-head iteration sorts the entire running set and builds a
  fresh N-entry dict to compute the EASY reservation.

This module provides drop-in replacements with the *same decision
semantics* — the indexed engine must produce bit-identical placement
sequences — but sublinear cost:

* :class:`FreeCoreIndex` — a binary max-tree over per-node free-core
  counts answering "leftmost node with at least ``c`` free cores"
  (exactly the first-fit-in-index-order semantics
  :meth:`~repro.workload.cluster.SimulatedCluster.find_node_with_free_cores`
  pins) in O(log N), with O(log N) point updates.
* :class:`PendingJobQueue` — a deque plus tombstone set: O(1) head
  pop, O(1) amortised removal of backfilled jobs from the middle.
* :func:`earliest_fit_time` — the EASY reservation computed by walking
  the running min-heap *lazily* in completion order (a k-smallest
  frontier traversal), stopping at the first node that accumulates
  enough free cores instead of sorting all R running jobs.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.workload.jobs import Job


class FreeCoreIndex:
    """Leftmost-fit index over per-node free-core counts.

    A complete binary max-tree stored in an array (segment tree over the
    node axis, padded to a power of two): internal node ``i`` holds the
    maximum free-core count in its leaf range, leaves ``size + j`` hold
    node ``j``'s current free cores.  Padding leaves hold 0 free cores and
    are unreachable for any request of at least one core.

    ``first_fit(c)`` descends left-first, so it returns exactly the
    lowest-index node with ``free >= c`` — the same answer as the O(N)
    array scan in
    :meth:`~repro.workload.cluster.SimulatedCluster.find_node_with_free_cores`,
    in O(log N).
    """

    __slots__ = ("_size", "_count", "_tree")

    def __init__(self, free_cores: Iterable[int]):
        leaves = [int(value) for value in free_cores]
        if not leaves:
            raise ValueError("FreeCoreIndex needs at least one node")
        if min(leaves) < 0:
            raise ValueError("free core counts must be non-negative")
        size = 1
        while size < len(leaves):
            size <<= 1
        tree = [0] * (2 * size)
        tree[size:size + len(leaves)] = leaves
        for i in range(size - 1, 0, -1):
            left, right = tree[2 * i], tree[2 * i + 1]
            tree[i] = left if left >= right else right
        self._size = size
        self._count = len(leaves)
        self._tree = tree

    @property
    def node_count(self) -> int:
        return self._count

    def free(self, node_index: int) -> int:
        """Current free cores recorded for ``node_index``."""
        if not 0 <= node_index < self._count:
            raise IndexError(f"node index {node_index} out of range")
        return self._tree[self._size + node_index]

    def set_free(self, node_index: int, free: int) -> None:
        """Record that ``node_index`` now has ``free`` cores free."""
        if not 0 <= node_index < self._count:
            raise IndexError(f"node index {node_index} out of range")
        tree = self._tree
        i = self._size + node_index
        tree[i] = free
        i >>= 1
        while i:
            left, right = tree[2 * i], tree[2 * i + 1]
            best = left if left >= right else right
            if tree[i] == best:
                break  # ancestors are already consistent
            tree[i] = best
            i >>= 1

    def first_fit(self, cores: int) -> Optional[int]:
        """Lowest node index with at least ``cores`` free, else ``None``."""
        if cores <= 0:
            raise ValueError("cores must be positive")
        tree = self._tree
        if tree[1] < cores:
            return None
        i = 1
        size = self._size
        while i < size:
            i <<= 1
            if tree[i] < cores:
                i += 1
        return i - size


class PendingJobQueue:
    """FIFO pending queue with O(1)-amortised middle removal.

    The reference loop keeps a plain list: ``pop(0)`` for FCFS starts and
    ``remove(candidate)`` for backfill starts, both O(queue).  Here the
    jobs live in a deque and backfilled jobs are *tombstoned* by id; dead
    entries are skipped at the head and compacted away whenever they would
    outnumber the live ones, keeping every operation O(1) amortised while
    preserving exact FIFO order over the live entries.
    """

    __slots__ = ("_entries", "_tombstones", "_live")

    def __init__(self):
        self._entries: Deque[Job] = deque()
        self._tombstones: Set[int] = set()
        self._live = 0

    def __bool__(self) -> bool:
        return self._live > 0

    def __len__(self) -> int:
        return self._live

    def append(self, job: Job) -> None:
        self._entries.append(job)
        self._live += 1

    def _skip_dead_head(self) -> None:
        entries, tombstones = self._entries, self._tombstones
        while entries and entries[0].job_id in tombstones:
            tombstones.discard(entries.popleft().job_id)

    def head(self) -> Job:
        """The oldest live job; raises :class:`IndexError` when empty."""
        self._skip_dead_head()
        return self._entries[0]

    def pop_head(self) -> Job:
        """Remove and return the oldest live job."""
        self._skip_dead_head()
        job = self._entries.popleft()
        self._live -= 1
        return job

    def discard(self, job: Job) -> None:
        """Tombstone ``job`` (a backfilled candidate) wherever it sits."""
        self._tombstones.add(job.job_id)
        self._live -= 1
        if len(self._tombstones) > self._live:
            self._compact()

    def _compact(self) -> None:
        tombstones = self._tombstones
        self._entries = deque(
            job for job in self._entries if job.job_id not in tombstones)
        tombstones.clear()

    def backfill_candidates(self, depth: int) -> List[Job]:
        """The first ``depth`` live jobs *behind the head*, in queue order.

        Equivalent to the reference loop's ``queue[1:1 + depth]`` snapshot:
        a list, taken before any backfill start mutates the queue.
        """
        if depth <= 0 or self._live <= 1:
            return []
        self._skip_dead_head()
        candidates: List[Job] = []
        tombstones = self._tombstones
        seen_head = False
        for job in self._entries:
            if job.job_id in tombstones:
                continue
            if not seen_head:
                seen_head = True
                continue
            candidates.append(job)
            if len(candidates) == depth:
                break
        return candidates


def earliest_fit_time(
    cores_needed: int,
    running: List[Tuple[float, int, int]],
    free_cores: Sequence[int],
) -> float:
    """EASY reservation: first completion time some node fits ``cores_needed``.

    Semantically identical to walking ``sorted(running)`` while
    accumulating freed cores per node on top of the current free counts
    (the reference :meth:`BackfillScheduler._head_reservation`), but the
    heap is traversed lazily: a frontier of heap positions yields entries
    in exactly sorted order (every unvisited entry has an ancestor in the
    frontier, and heap ancestors never compare greater), so the walk stops
    after the k completions that actually matter instead of paying
    O(R log R) to sort all R running jobs.  Entries comparing equal are
    interchangeable — identical ``(end, node, cores)`` contributions — so
    the frontier's index tie-break cannot change the returned time.

    Returns ``inf`` when even draining every running job never frees
    enough cores on one node.
    """
    if not running:
        return float("inf")
    freed: Dict[int, int] = {}
    count = len(running)
    frontier: List[Tuple[Tuple[float, int, int], int]] = [(running[0], 0)]
    while frontier:
        (end_time, node_index, cores), position = heapq.heappop(frontier)
        total = freed.get(node_index)
        if total is None:
            total = int(free_cores[node_index])
        total += cores
        if total >= cores_needed:
            return end_time
        freed[node_index] = total
        child = 2 * position + 1
        if child < count:
            heapq.heappush(frontier, (running[child], child))
        child += 1
        if child < count:
            heapq.heappush(frontier, (running[child], child))
    return float("inf")


__all__ = ["FreeCoreIndex", "PendingJobQueue", "earliest_fit_time"]
