"""Synthetic batch jobs and workload generation.

IRIS supports high-throughput particle-physics and astronomy pipelines:
predominantly single-node (often single-core-group) jobs with heavy-tailed
runtimes, submitted around the clock with a mild day/night cycle.  The
generator below produces such a stream deterministically from a seed, with
a :class:`WorkloadProfile` capturing the knobs that matter for energy:

* arrival rate (jobs/hour) and its diurnal modulation,
* job width distribution (cores per job),
* runtime distribution (lognormal, heavy tailed),
* per-job CPU intensity (how hard the allocated cores are actually driven,
  which is what the power model ultimately responds to).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.seeding import as_generator


@dataclass(frozen=True)
class Job:
    """A batch job.

    Attributes
    ----------
    job_id:
        Unique integer id in submission order.
    submit_time_s:
        Submission time, seconds since the start of the simulation window.
    cores:
        Number of cores requested (jobs never span nodes in this model,
        matching the high-throughput IRIS workload).
    runtime_s:
        Actual runtime once started.
    cpu_intensity:
        Average fraction of the allocated cores' capability the job drives
        (1.0 = fully compute bound); feeds the power model.
    """

    job_id: int
    submit_time_s: float
    cores: int
    runtime_s: float
    cpu_intensity: float = 1.0

    def __post_init__(self):
        if self.job_id < 0:
            raise ValueError("job_id must be non-negative")
        if self.submit_time_s < 0:
            raise ValueError("submit_time_s must be non-negative")
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.runtime_s <= 0:
            raise ValueError("runtime_s must be positive")
        if not 0.0 < self.cpu_intensity <= 1.0:
            raise ValueError("cpu_intensity must be in (0, 1]")

    @property
    def core_seconds(self) -> float:
        """Requested cores multiplied by runtime."""
        return self.cores * self.runtime_s


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical description of a site's workload.

    The defaults describe a busy high-throughput site; the
    :func:`repro.power.calibration.utilization_for_target_power` helper is
    normally used to pick ``target_utilization`` so the simulated site lands
    on the measured per-node power of Table 2.
    """

    #: Long-run average fraction of the cluster's cores that should be busy.
    target_utilization: float = 0.75
    #: Amplitude of the diurnal modulation of submissions (0 = flat).
    diurnal_amplitude: float = 0.2
    #: Mean of job width (cores per job); widths are drawn geometrically.
    mean_cores_per_job: float = 4.0
    #: Median runtime in seconds and the lognormal shape (sigma).
    median_runtime_s: float = 3 * 3600.0
    runtime_sigma: float = 1.0
    #: Range of per-job CPU intensity.
    cpu_intensity_low: float = 0.7
    cpu_intensity_high: float = 1.0

    def __post_init__(self):
        if not 0.0 < self.target_utilization <= 1.0:
            raise ValueError("target_utilization must be in (0, 1]")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.mean_cores_per_job < 1.0:
            raise ValueError("mean_cores_per_job must be at least 1")
        if self.median_runtime_s <= 0:
            raise ValueError("median_runtime_s must be positive")
        if self.runtime_sigma <= 0:
            raise ValueError("runtime_sigma must be positive")
        if not 0.0 < self.cpu_intensity_low <= self.cpu_intensity_high <= 1.0:
            raise ValueError("cpu intensity bounds must satisfy 0 < low <= high <= 1")


class JobGenerator:
    """Deterministic generator of synthetic job streams.

    Parameters
    ----------
    profile:
        Workload statistics.
    total_cores:
        Core count of the target cluster, used to size the arrival rate so
        the requested ``target_utilization`` is achievable.
    seed:
        Integer seed (identical seeds give identical workloads) or a
        ready :class:`numpy.random.Generator` for callers that manage
        their own streams; global numpy state is never touched.
    max_cores_per_job:
        Upper bound on a single job's width.  Pass the cluster's per-node
        core count when jobs must fit on one node (the default placement
        model of the scheduler); defaults to ``total_cores``.
    """

    def __init__(
        self,
        profile: WorkloadProfile,
        total_cores: int,
        seed: int = 0,
        max_cores_per_job: int | None = None,
    ):
        if total_cores <= 0:
            raise ValueError("total_cores must be positive")
        if max_cores_per_job is not None and max_cores_per_job <= 0:
            raise ValueError("max_cores_per_job must be positive when given")
        self._profile = profile
        self._total_cores = int(total_cores)
        self._seed = seed
        self._max_cores = int(min(total_cores, max_cores_per_job or total_cores))

    @property
    def profile(self) -> WorkloadProfile:
        return self._profile

    def _arrival_rate_per_second(self) -> float:
        """Mean job arrival rate needed to hit the target utilisation.

        ``target_utilization * total_cores`` core-seconds must be delivered
        per second; each job delivers ``mean_cores * mean_runtime`` of them.
        """
        p = self._profile
        mean_runtime = p.median_runtime_s * float(np.exp(p.runtime_sigma ** 2 / 2.0))
        demanded_core_seconds_per_second = p.target_utilization * self._total_cores
        per_job = p.mean_cores_per_job * mean_runtime
        return demanded_core_seconds_per_second / per_job

    def generate(self, duration_s: float, warmup_s: float = 0.0) -> List[Job]:
        """Generate the job stream for ``[0, duration_s)``.

        ``warmup_s`` extends the stream backwards so the cluster is already
        loaded at time zero (jobs submitted during warm-up have negative
        ids' submit times clamped to zero but keep their remaining work);
        the snapshot orchestration uses a warm-up of a few mean runtimes so
        the measured day is statistically stationary.
        """
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if warmup_s < 0:
            raise ValueError("warmup_s must be non-negative")
        p = self._profile
        rng = as_generator(self._seed)
        rate = self._arrival_rate_per_second()
        window = duration_s + warmup_s
        # Thinning a Poisson stream (for the diurnal cycle) reduces its mean
        # rate by the average acceptance probability, so the stream is drawn
        # at an inflated rate such that the *post-thinning* rate equals the
        # rate the utilisation target requires.
        amplitude = p.diurnal_amplitude
        draw_rate = rate * (1.0 + amplitude)
        expected_jobs = draw_rate * window
        # Draw a generous number of inter-arrival gaps and trim to the window.
        n_draw = max(int(expected_jobs * 1.5) + 16, 16)
        gaps = rng.exponential(1.0 / draw_rate, size=n_draw)
        arrivals = np.cumsum(gaps)
        arrivals = arrivals[arrivals < window]
        # Diurnal thinning: drop a time-dependent fraction of arrivals.
        if amplitude > 0 and len(arrivals):
            hour = ((arrivals - warmup_s) % 86400.0) / 3600.0
            acceptance = (
                1.0 + amplitude * np.cos(2 * np.pi * (hour - 14.0) / 24.0)
            ) / (1.0 + amplitude)
            keep = rng.random(len(arrivals)) < acceptance
            arrivals = arrivals[keep]
        jobs: List[Job] = []
        job_id = 0
        for arrival in arrivals:
            # Geometric widths have mean exactly `mean_cores_per_job`.
            cores = int(min(rng.geometric(1.0 / p.mean_cores_per_job), self._max_cores))
            runtime = float(rng.lognormal(np.log(p.median_runtime_s), p.runtime_sigma))
            runtime = max(runtime, 60.0)
            intensity = float(rng.uniform(p.cpu_intensity_low, p.cpu_intensity_high))
            submit = arrival - warmup_s
            if submit < 0.0:
                # A warm-up job: only the part of it still running at time
                # zero matters.  Jobs that would have finished before the
                # window opened are dropped; the rest carry their remaining
                # runtime, which leaves the cluster in (approximately) its
                # stationary state at the start of the measured window.
                remaining = runtime + submit
                if remaining <= 0.0:
                    continue
                runtime = max(remaining, 60.0)
                submit = 0.0
            jobs.append(
                Job(
                    job_id=job_id,
                    submit_time_s=float(submit),
                    cores=cores,
                    runtime_s=runtime,
                    cpu_intensity=intensity,
                )
            )
            job_id += 1
        return jobs

    def total_core_seconds(self, jobs: Sequence[Job]) -> float:
        """Total requested core-seconds of a job list (for sanity checks)."""
        return float(sum(job.core_seconds for job in jobs))


__all__ = ["Job", "JobGenerator", "WorkloadProfile"]
