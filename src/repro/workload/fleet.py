"""Columnar fleet utilisation: the array-first workload→power interface.

A :class:`FleetUtilization` is the columnar heart of the simulation
substrate: one ``(n_nodes, n_intervals)`` float64 matrix for the *whole*
fleet plus a node-id index with O(1) lookup, instead of anything resembling
one object per node.  It extends
:class:`~repro.workload.utilization.UtilizationTrace` (so every existing
consumer keeps working) with:

* :meth:`FleetUtilization.from_placements` — building the matrix directly
  from scheduler :class:`~repro.workload.scheduler.Placement` records with
  interval-overlap math on arrays.  The per-placement Python loop of the
  historical ``BackfillScheduler.build_trace`` survives only as the
  cross-validation oracle (``build_trace_loop``).
* O(1) node lookup — ``node_series``/``subset`` resolve ids through a dict
  index rather than a linear scan, which matters at full IRIS scale
  (thousands of nodes × thousands of lookups).
* thin per-node row views — :meth:`node_view` returns a read-only numpy
  view of one node's row (no copy), and :meth:`per_node_views` the whole
  fleet as a mapping, preserving the ergonomics of the old per-node API
  without per-node storage.

The vectorised construction decomposes each placement's coverage of the
sampling grid into (a) a partial first interval, (b) a run of fully covered
intervals, and (c) a partial last interval.  Partials are scatter-added
with :func:`numpy.add.at`; full runs use a boundary (difference) array that
a single cumulative sum turns into per-interval occupancy — O(placements +
nodes × intervals) with no Python-level loop over placements.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, TYPE_CHECKING

import numpy as np

from repro.timeseries.series import TimeSeries
from repro.workload.utilization import UtilizationTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.scheduler import Placement


class FleetUtilization(UtilizationTrace):
    """A whole fleet's effective utilisation as one columnar matrix.

    Construction is identical to :class:`UtilizationTrace`; the subclass
    adds the node-id index and the vectorised builders.  Instances satisfy
    ``isinstance(x, UtilizationTrace)``, so the power layer and every
    pre-existing consumer accept them unchanged.
    """

    __slots__ = ("_row_index",)

    def __init__(self, start: float, step: float, node_ids: Sequence[str],
                 matrix: np.ndarray):
        super().__init__(start, step, node_ids, matrix)
        self._row_index: Dict[str, int] = {
            node_id: row for row, node_id in enumerate(self._node_ids)
        }

    # -- vectorised construction ---------------------------------------------------

    @classmethod
    def from_placements(
        cls,
        placements: Sequence["Placement"],
        node_ids: Sequence[str],
        node_cores: Sequence[int],
        duration_s: float,
        step_s: float = 60.0,
        start_s: float = 0.0,
    ) -> "FleetUtilization":
        """Build the fleet matrix from placements with array math.

        Each placement contributes ``cores * cpu_intensity / node_cores``
        to its node's row for every interval it overlaps, partial first and
        last intervals pro-rated — the same quantity the historical
        per-placement loop accumulated, computed columnar-ly.
        """
        if step_s <= 0:
            raise ValueError("step_s must be positive")
        n_samples = int(round(duration_s / step_s))
        if n_samples <= 0:
            raise ValueError("duration_s must cover at least one sample")
        n_nodes = len(node_ids)
        cores = np.asarray(node_cores, dtype=np.float64)
        if cores.shape != (n_nodes,):
            raise ValueError("node_cores must have one entry per node id")
        if (cores <= 0).any():
            raise ValueError("node core counts must be positive")
        if not placements:
            return cls._from_trusted(
                start_s, step_s, node_ids,
                np.zeros((n_nodes, n_samples), dtype=np.float64))

        n = len(placements)
        node_idx = np.fromiter((p.node_index for p in placements),
                               dtype=np.int64, count=n)
        if (node_idx < 0).any() or (node_idx >= n_nodes).any():
            raise ValueError("placement node_index outside the fleet")
        t0 = np.fromiter((p.start_time_s for p in placements),
                         dtype=np.float64, count=n)
        t1 = np.fromiter((p.end_time_s for p in placements),
                         dtype=np.float64, count=n)
        weight = np.fromiter(
            (p.job.cores * p.job.cpu_intensity for p in placements),
            dtype=np.float64, count=n)

        # Clip every placement to the trace window (same bound as the
        # oracle) and drop non-overlapping ones; interval indices are
        # additionally clamped to the sampled grid below, so a window that
        # is not a whole number of steps cannot scatter off-grid (the
        # per-placement oracle can raise IndexError there instead).
        end_s = start_s + duration_s
        t0 = np.maximum(t0, start_s)
        t1 = np.minimum(t1, end_s)
        keep = t1 > t0
        if not keep.all():
            node_idx, t0, t1, weight = (a[keep] for a in (node_idx, t0, t1, weight))
        if node_idx.size == 0:
            return cls._from_trusted(
                start_s, step_s, node_ids,
                np.zeros((n_nodes, n_samples), dtype=np.float64))

        first = np.minimum(((t0 - start_s) // step_s).astype(np.int64),
                           n_samples - 1)
        last = np.minimum(((t1 - start_s) // step_s).astype(np.int64),
                          n_samples - 1)
        edge_first = start_s + step_s * (first + 1.0)  # end of first interval
        edge_last = start_s + step_s * last            # start of last interval

        matrix = np.zeros((n_nodes, n_samples), dtype=np.float64)
        acc = matrix.reshape(-1)
        single = first == last
        multi = ~single
        # Placements confined to one interval: pro-rate by covered fraction.
        if single.any():
            frac = (t1[single] - t0[single]) / step_s
            np.add.at(acc, node_idx[single] * n_samples + first[single],
                      weight[single] * frac)
        if multi.any():
            m_idx, m_first, m_last = node_idx[multi], first[multi], last[multi]
            m_w = weight[multi]
            # Partial first and last intervals.
            np.add.at(acc, m_idx * n_samples + m_first,
                      m_w * (edge_first[multi] - t0[multi]) / step_s)
            np.add.at(acc, m_idx * n_samples + m_last,
                      m_w * (t1[multi] - edge_last[multi]) / step_s)
            # Fully covered run [first+1, last): boundary deltas, one cumsum.
            run = np.zeros((n_nodes, n_samples + 1), dtype=np.float64)
            flat = run.reshape(-1)
            np.add.at(flat, m_idx * (n_samples + 1) + m_first + 1, m_w)
            np.add.at(flat, m_idx * (n_samples + 1) + m_last, -m_w)
            np.cumsum(run, axis=1, out=run)
            matrix += run[:, :n_samples]

        matrix /= cores[:, None]
        np.clip(matrix, 0.0, 1.0, out=matrix)
        return cls._from_trusted(start_s, step_s, node_ids, matrix)

    @classmethod
    def _from_trusted(cls, start: float, step: float, node_ids: Sequence[str],
                      matrix: np.ndarray) -> "FleetUtilization":
        """Construct without re-validation from a matrix correct by construction.

        Only for engine-internal callers that already guarantee the
        invariants the public constructor checks (finite values clipped to
        [0, 1], unique node ids, one row per node).
        """
        obj = cls.__new__(cls)
        obj._start = float(start)
        obj._step = float(step)
        obj._node_ids = list(node_ids)
        obj._matrix = matrix
        obj._row_index = {nid: row for row, nid in enumerate(obj._node_ids)}
        return obj

    @classmethod
    def from_trace(cls, trace: UtilizationTrace) -> "FleetUtilization":
        """Promote a plain trace to a fleet view (shares no mutable state)."""
        if isinstance(trace, cls):
            return trace
        return cls(trace.start, trace.step, trace.node_ids, trace.matrix)

    # -- O(1) per-node access --------------------------------------------------------

    def row_of(self, node_id: str) -> int:
        """The matrix row holding ``node_id``'s utilisation."""
        try:
            return self._row_index[node_id]
        except KeyError:
            raise KeyError(f"no node {node_id!r} in trace") from None

    def node_view(self, node_id: str) -> np.ndarray:
        """A read-only, zero-copy view of one node's utilisation row."""
        view = self._matrix[self.row_of(node_id)].view()
        view.flags.writeable = False
        return view

    def per_node_views(self) -> Mapping[str, np.ndarray]:
        """The old dict-of-per-node shape, as thin row views (no copies)."""
        return {node_id: self.node_view(node_id) for node_id in self._node_ids}

    def node_series(self, node_id: str) -> TimeSeries:
        """The utilisation series of one node (O(1) id lookup)."""
        return TimeSeries(self._start, self._step,
                          self._matrix[self.row_of(node_id)])

    def subset(self, node_ids: Sequence[str]) -> "FleetUtilization":
        """A fleet restricted to the given nodes (O(1) per-id lookup)."""
        rows = [self.row_of(node_id) for node_id in node_ids]
        return FleetUtilization(self._start, self._step, list(node_ids),
                                self._matrix[rows])

    # -- fleet-level aggregates -----------------------------------------------------

    def busy_core_seconds(self, node_cores: Sequence[int]) -> float:
        """Total effective core-seconds delivered across the fleet."""
        cores = np.asarray(node_cores, dtype=np.float64)
        if cores.shape != (self.node_count,):
            raise ValueError("node_cores must have one entry per node")
        return float((self._matrix.sum(axis=1) * cores).sum() * self._step)


__all__ = ["FleetUtilization"]
