"""Columnar fleet utilisation: the array-first workload→power interface.

A :class:`FleetUtilization` is the columnar heart of the simulation
substrate: one ``(n_nodes, n_intervals)`` float64 matrix for the *whole*
fleet plus a node-id index with O(1) lookup, instead of anything resembling
one object per node.  It extends
:class:`~repro.workload.utilization.UtilizationTrace` (so every existing
consumer keeps working) with:

* :meth:`FleetUtilization.from_placements` — building the matrix directly
  from scheduler :class:`~repro.workload.scheduler.Placement` records with
  interval-overlap math on arrays.  The per-placement Python loop of the
  historical ``BackfillScheduler.build_trace`` survives only as the
  cross-validation oracle (``build_trace_loop``).
* O(1) node lookup — ``node_series``/``subset`` resolve ids through a dict
  index rather than a linear scan, which matters at full IRIS scale
  (thousands of nodes × thousands of lookups).
* thin per-node row views — :meth:`node_view` returns a read-only numpy
  view of one node's row (no copy), and :meth:`per_node_views` the whole
  fleet as a mapping, preserving the ergonomics of the old per-node API
  without per-node storage.

The vectorised construction decomposes each placement's coverage of the
sampling grid into (a) a partial first interval, (b) a run of fully covered
intervals, and (c) a partial last interval.  Partials are scatter-added
with :func:`numpy.add.at`; full runs use a boundary (difference) array that
a single cumulative sum turns into per-interval occupancy — O(placements +
nodes × intervals) with no Python-level loop over placements.

:class:`ShardedFleetUtilization` is the out-of-core sibling for fleets
whose dense ``(n_nodes, n_intervals)`` matrix does not fit in RAM (the
full-scale year-long campaigns of the ROADMAP: 100k+ nodes × 8760 hourly
intervals ≈ 7 GB per matrix).  The node axis is partitioned into fixed-size
shards, each built with the same vectorised placement math and written to
its own ``.npy`` file; shards are re-opened as read-only memmaps, so any
consumer streams one shard's worth of data at a time and the dense matrix
never exists in memory.  A shard directory is self-describing — a
``manifest.json`` records the format version
(:data:`SHARD_FORMAT_VERSION`), the content key (the substrate cache's
physical-spec digest), the sampling grid, the shard geometry and the
storage dtype/layout — and a directory whose manifest matches is reused
instead of rebuilt.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING, Union

import numpy as np

from repro.timeseries.series import TimeSeries
from repro.workload.utilization import UtilizationTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.scheduler import Placement

#: Bump when the on-disk shard layout changes; mismatched directories are
#: rebuilt from scratch (the same discipline as
#: :data:`repro.api.persistence.SNAPSHOT_CACHE_VERSION`).
SHARD_FORMAT_VERSION = 1

#: Name of the shard directory's self-description file.
SHARD_MANIFEST_NAME = "manifest.json"

#: On-disk dtypes a shard store may use.  Storage in ``float32`` halves the
#: footprint; every consumer accumulates in float64 regardless.
SHARD_DTYPES = ("float64", "float32")

#: Physical layouts of one shard file: ``node-major`` stores the shard as
#: ``(shard_nodes, n_samples)`` (rows are nodes, like the dense matrix);
#: ``interval-major`` stores the transpose, which makes the per-sample
#: contraction read contiguous memory.
SHARD_LAYOUTS = ("node-major", "interval-major")


def _placement_arrays(
    placements: Sequence["Placement"],
    n_nodes: int,
    duration_s: float,
    start_s: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Placements as ``(node_idx, t0, t1, weight)`` arrays, window-clipped.

    The shared front half of the vectorised builders: placements are
    clipped to the trace window (same bound as the per-placement oracle)
    and non-overlapping ones dropped, so the accumulation kernels below
    only ever see in-window work.
    """
    n = len(placements)
    if n == 0:
        empty = np.empty(0)
        return empty.astype(np.int64), empty, empty, empty
    node_idx = np.fromiter((p.node_index for p in placements),
                           dtype=np.int64, count=n)
    if (node_idx < 0).any() or (node_idx >= n_nodes).any():
        raise ValueError("placement node_index outside the fleet")
    t0 = np.fromiter((p.start_time_s for p in placements),
                     dtype=np.float64, count=n)
    t1 = np.fromiter((p.end_time_s for p in placements),
                     dtype=np.float64, count=n)
    weight = np.fromiter(
        (p.job.cores * p.job.cpu_intensity for p in placements),
        dtype=np.float64, count=n)
    end_s = start_s + duration_s
    t0 = np.maximum(t0, start_s)
    t1 = np.minimum(t1, end_s)
    keep = t1 > t0
    if not keep.all():
        node_idx, t0, t1, weight = (a[keep] for a in (node_idx, t0, t1, weight))
    return node_idx, t0, t1, weight


def _accumulate_matrix(
    arrays: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    n_nodes: int,
    n_samples: int,
    step_s: float,
    start_s: float,
    cores: np.ndarray,
) -> np.ndarray:
    """The vectorised interval-overlap accumulation for one block of nodes.

    ``arrays`` is the output of :func:`_placement_arrays`, with
    ``node_idx`` already shifted into ``[0, n_nodes)`` for this block.
    Interval indices are clamped to the sampled grid, so a window that is
    not a whole number of steps cannot scatter off-grid (the per-placement
    oracle can raise IndexError there instead).  Returns the normalised,
    clipped utilisation matrix for the block.
    """
    node_idx, t0, t1, weight = arrays
    matrix = np.zeros((n_nodes, n_samples), dtype=np.float64)
    if node_idx.size == 0:
        return matrix
    first = np.minimum(((t0 - start_s) // step_s).astype(np.int64),
                       n_samples - 1)
    last = np.minimum(((t1 - start_s) // step_s).astype(np.int64),
                      n_samples - 1)
    edge_first = start_s + step_s * (first + 1.0)  # end of first interval
    edge_last = start_s + step_s * last            # start of last interval

    acc = matrix.reshape(-1)
    single = first == last
    multi = ~single
    # Placements confined to one interval: pro-rate by covered fraction.
    if single.any():
        frac = (t1[single] - t0[single]) / step_s
        np.add.at(acc, node_idx[single] * n_samples + first[single],
                  weight[single] * frac)
    if multi.any():
        m_idx, m_first, m_last = node_idx[multi], first[multi], last[multi]
        m_w = weight[multi]
        # Partial first and last intervals.
        np.add.at(acc, m_idx * n_samples + m_first,
                  m_w * (edge_first[multi] - t0[multi]) / step_s)
        np.add.at(acc, m_idx * n_samples + m_last,
                  m_w * (t1[multi] - edge_last[multi]) / step_s)
        # Fully covered run [first+1, last): boundary deltas, one cumsum.
        run = np.zeros((n_nodes, n_samples + 1), dtype=np.float64)
        flat = run.reshape(-1)
        np.add.at(flat, m_idx * (n_samples + 1) + m_first + 1, m_w)
        np.add.at(flat, m_idx * (n_samples + 1) + m_last, -m_w)
        np.cumsum(run, axis=1, out=run)
        matrix += run[:, :n_samples]

    matrix /= cores[:, None]
    np.clip(matrix, 0.0, 1.0, out=matrix)
    return matrix


class FleetUtilization(UtilizationTrace):
    """A whole fleet's effective utilisation as one columnar matrix.

    Construction is identical to :class:`UtilizationTrace`; the subclass
    adds the node-id index and the vectorised builders.  Instances satisfy
    ``isinstance(x, UtilizationTrace)``, so the power layer and every
    pre-existing consumer accept them unchanged.
    """

    __slots__ = ("_row_index",)

    def __init__(self, start: float, step: float, node_ids: Sequence[str],
                 matrix: np.ndarray):
        super().__init__(start, step, node_ids, matrix)
        self._row_index: Dict[str, int] = {
            node_id: row for row, node_id in enumerate(self._node_ids)
        }

    # -- vectorised construction ---------------------------------------------------

    @classmethod
    def from_placements(
        cls,
        placements: Sequence["Placement"],
        node_ids: Sequence[str],
        node_cores: Sequence[int],
        duration_s: float,
        step_s: float = 60.0,
        start_s: float = 0.0,
    ) -> "FleetUtilization":
        """Build the fleet matrix from placements with array math.

        Each placement contributes ``cores * cpu_intensity / node_cores``
        to its node's row for every interval it overlaps, partial first and
        last intervals pro-rated — the same quantity the historical
        per-placement loop accumulated, computed columnar-ly.
        """
        if step_s <= 0:
            raise ValueError("step_s must be positive")
        n_samples = int(round(duration_s / step_s))
        if n_samples <= 0:
            raise ValueError("duration_s must cover at least one sample")
        n_nodes = len(node_ids)
        cores = np.asarray(node_cores, dtype=np.float64)
        if cores.shape != (n_nodes,):
            raise ValueError("node_cores must have one entry per node id")
        if (cores <= 0).any():
            raise ValueError("node core counts must be positive")
        arrays = _placement_arrays(placements, n_nodes, duration_s, start_s)
        matrix = _accumulate_matrix(arrays, n_nodes, n_samples, step_s,
                                    start_s, cores)
        return cls._from_trusted(start_s, step_s, node_ids, matrix)

    @classmethod
    def _from_trusted(cls, start: float, step: float, node_ids: Sequence[str],
                      matrix: np.ndarray) -> "FleetUtilization":
        """Construct without re-validation from a matrix correct by construction.

        Only for engine-internal callers that already guarantee the
        invariants the public constructor checks (finite values clipped to
        [0, 1], unique node ids, one row per node).
        """
        obj = cls.__new__(cls)
        obj._start = float(start)
        obj._step = float(step)
        obj._node_ids = list(node_ids)
        obj._matrix = matrix
        obj._row_index = {nid: row for row, nid in enumerate(obj._node_ids)}
        return obj

    @classmethod
    def from_trace(cls, trace: UtilizationTrace) -> "FleetUtilization":
        """Promote a plain trace to a fleet view (shares no mutable state)."""
        if isinstance(trace, cls):
            return trace
        return cls(trace.start, trace.step, trace.node_ids, trace.matrix)

    # -- O(1) per-node access --------------------------------------------------------

    def row_of(self, node_id: str) -> int:
        """The matrix row holding ``node_id``'s utilisation."""
        try:
            return self._row_index[node_id]
        except KeyError:
            raise KeyError(f"no node {node_id!r} in trace") from None

    def node_view(self, node_id: str) -> np.ndarray:
        """A read-only, zero-copy view of one node's utilisation row."""
        view = self._matrix[self.row_of(node_id)].view()
        view.flags.writeable = False
        return view

    def per_node_views(self) -> Mapping[str, np.ndarray]:
        """The old dict-of-per-node shape, as thin row views (no copies)."""
        return {node_id: self.node_view(node_id) for node_id in self._node_ids}

    def node_series(self, node_id: str) -> TimeSeries:
        """The utilisation series of one node (O(1) id lookup)."""
        return TimeSeries(self._start, self._step,
                          self._matrix[self.row_of(node_id)])

    def subset(self, node_ids: Sequence[str]) -> "FleetUtilization":
        """A fleet restricted to the given nodes (O(1) per-id lookup)."""
        rows = [self.row_of(node_id) for node_id in node_ids]
        return FleetUtilization(self._start, self._step, list(node_ids),
                                self._matrix[rows])

    # -- fleet-level aggregates -----------------------------------------------------

    def busy_core_seconds(self, node_cores: Sequence[int]) -> float:
        """Total effective core-seconds delivered across the fleet."""
        cores = np.asarray(node_cores, dtype=np.float64)
        if cores.shape != (self.node_count,):
            raise ValueError("node_cores must have one entry per node")
        return float((self._matrix.sum(axis=1) * cores).sum() * self._step)


def _atomic_save_array(path: Path, array: np.ndarray) -> None:
    """``np.save`` with the persist-layer's temp-file + rename discipline."""
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".npy.tmp")
    os.close(fd)
    try:
        with open(tmp, "wb") as handle:
            np.save(handle, array)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def _shard_bounds(n_nodes: int, shard_nodes: int) -> List[Tuple[int, int]]:
    """The ``[lo, hi)`` node ranges of each shard."""
    return [(lo, min(lo + shard_nodes, n_nodes))
            for lo in range(0, n_nodes, shard_nodes)]


class ShardedFleetUtilization:
    """A fleet's utilisation as node-axis shards on disk, never all in RAM.

    Mirrors the read surface of :class:`FleetUtilization` that the power
    layer and the snapshot experiment actually consume (``node_ids``,
    ``mean_per_node``, ``mean_utilization``, ``node_series``, the grid
    accessors) but holds no matrix: every access streams the relevant
    shard(s) through a read-only memmap.  Use
    :meth:`ShardedFleetUtilization.from_placements` to build (or reuse) a
    shard directory and :meth:`ShardedFleetUtilization.open` to re-open an
    existing one.

    Shard files are float32 or float64 (``dtype``), node-major or
    interval-major (``layout``); consumers must accumulate reductions in
    float64 regardless of the storage dtype.
    """

    __slots__ = ("_directory", "_start", "_step", "_node_ids", "_n_samples",
                 "_shard_nodes", "_dtype", "_layout", "_bounds", "_files",
                 "_row_index", "_key")

    def __init__(self, directory: Union[str, Path], manifest: Dict[str, object]):
        self._directory = Path(directory)
        if manifest.get("version") != SHARD_FORMAT_VERSION:
            raise ValueError(
                f"shard directory {self._directory} has format version "
                f"{manifest.get('version')!r}, expected {SHARD_FORMAT_VERSION}")
        self._start = float(manifest["start"])
        self._step = float(manifest["step"])
        self._node_ids: List[str] = list(manifest["node_ids"])
        self._n_samples = int(manifest["n_samples"])
        self._shard_nodes = int(manifest["shard_nodes"])
        self._dtype = str(manifest["dtype"])
        self._layout = str(manifest["layout"])
        self._key = manifest.get("key")
        if self._dtype not in SHARD_DTYPES:
            raise ValueError(f"unknown shard dtype {self._dtype!r}")
        if self._layout not in SHARD_LAYOUTS:
            raise ValueError(f"unknown shard layout {self._layout!r}")
        if self._step <= 0 or self._n_samples <= 0 or self._shard_nodes <= 0:
            raise ValueError("shard manifest geometry must be positive")
        self._bounds = _shard_bounds(len(self._node_ids), self._shard_nodes)
        self._files = [self._directory / str(name)
                       for name in manifest["shards"]]
        if len(self._files) != len(self._bounds):
            raise ValueError("shard manifest lists the wrong shard count")
        self._row_index = {nid: row for row, nid in enumerate(self._node_ids)}

    # -- construction ----------------------------------------------------------------

    @classmethod
    def from_placements(
        cls,
        placements: Sequence["Placement"],
        node_ids: Sequence[str],
        node_cores: Sequence[int],
        duration_s: float,
        directory: Union[str, Path],
        step_s: float = 60.0,
        start_s: float = 0.0,
        shard_nodes: int = 4096,
        dtype: str = "float64",
        layout: str = "node-major",
        key: Optional[str] = None,
    ) -> "ShardedFleetUtilization":
        """Build the shard directory from placements, one shard in RAM at a time.

        Each shard's sub-matrix is produced by the same vectorised
        interval-overlap math as the dense builder, restricted to the
        shard's node range, then written atomically as one ``.npy`` file.
        Peak memory is O(shard_nodes × n_samples), independent of fleet
        size.

        ``key`` is the content key of the physical configuration that
        produced the placements (the substrate cache's physical-spec
        digest).  When the directory already holds a manifest with the same
        version, key and parameters, the existing shards are reused instead
        of rebuilt; pass ``key=None`` to always rebuild.
        """
        if step_s <= 0:
            raise ValueError("step_s must be positive")
        n_samples = int(round(duration_s / step_s))
        if n_samples <= 0:
            raise ValueError("duration_s must cover at least one sample")
        if shard_nodes < 1:
            raise ValueError("shard_nodes must be at least 1")
        if dtype not in SHARD_DTYPES:
            raise ValueError(
                f"unknown shard dtype {dtype!r}; expected one of "
                f"{', '.join(SHARD_DTYPES)}")
        if layout not in SHARD_LAYOUTS:
            raise ValueError(
                f"unknown shard layout {layout!r}; expected one of "
                f"{', '.join(SHARD_LAYOUTS)}")
        n_nodes = len(node_ids)
        cores = np.asarray(node_cores, dtype=np.float64)
        if cores.shape != (n_nodes,):
            raise ValueError("node_cores must have one entry per node id")
        if (cores <= 0).any():
            raise ValueError("node core counts must be positive")

        directory = Path(directory)
        if key is not None:
            existing = cls._reusable(directory, node_ids, start_s, step_s,
                                     n_samples, shard_nodes, dtype, layout, key)
            if existing is not None:
                return existing
        directory.mkdir(parents=True, exist_ok=True)

        node_idx, t0, t1, weight = _placement_arrays(
            placements, n_nodes, duration_s, start_s)
        bounds = _shard_bounds(n_nodes, shard_nodes)
        # Placements sorted by node give each shard one contiguous slice.
        order = np.argsort(node_idx, kind="stable")
        node_idx, t0, t1, weight = (a[order] for a in (node_idx, t0, t1, weight))
        splits = np.searchsorted(node_idx, [lo for lo, _ in bounds] +
                                 [n_nodes], side="left")
        shard_files = []
        for index, (lo, hi) in enumerate(bounds):
            sel = slice(splits[index], splits[index + 1])
            block = _accumulate_matrix(
                (node_idx[sel] - lo, t0[sel], t1[sel], weight[sel]),
                hi - lo, n_samples, step_s, start_s, cores[lo:hi])
            if layout == "interval-major":
                block = np.ascontiguousarray(block.T)
            if dtype == "float32":
                block = block.astype(np.float32)
            name = f"shard_{index:05d}.npy"
            _atomic_save_array(directory / name, block)
            shard_files.append(name)
            del block

        manifest = {
            "version": SHARD_FORMAT_VERSION,
            "key": key,
            "start": start_s,
            "step": step_s,
            "n_samples": n_samples,
            "shard_nodes": shard_nodes,
            "dtype": dtype,
            "layout": layout,
            "node_ids": list(node_ids),
            "shards": shard_files,
        }
        manifest_path = directory / SHARD_MANIFEST_NAME
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".json.tmp")
        os.close(fd)
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle)
            os.replace(tmp, manifest_path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        return cls(directory, manifest)

    @classmethod
    def _reusable(cls, directory: Path, node_ids: Sequence[str], start_s: float,
                  step_s: float, n_samples: int, shard_nodes: int, dtype: str,
                  layout: str, key: str) -> Optional["ShardedFleetUtilization"]:
        """An existing shard store matching the requested build, or ``None``.

        Any mismatch — version skew, different key, different geometry or
        storage parameters, unreadable manifest, missing shard file — is a
        rebuild, never an error.
        """
        try:
            store = cls.open(directory)
        except (OSError, ValueError, KeyError, TypeError,
                json.JSONDecodeError):
            return None
        if (store._key == key
                and store._node_ids == list(node_ids)
                and store._start == start_s
                and store._step == step_s
                and store._n_samples == n_samples
                and store._shard_nodes == shard_nodes
                and store._dtype == dtype
                and store._layout == layout
                and all(path.exists() for path in store._files)):
            return store
        return None

    @classmethod
    def open(cls, directory: Union[str, Path]) -> "ShardedFleetUtilization":
        """Open an existing shard directory (raises on skew/corruption)."""
        directory = Path(directory)
        with open(directory / SHARD_MANIFEST_NAME, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        return cls(directory, manifest)

    # -- grid / identity accessors ----------------------------------------------------

    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def key(self) -> Optional[str]:
        """The content key the store was built under (``None`` = unkeyed)."""
        return self._key

    @property
    def start(self) -> float:
        return self._start

    @property
    def step(self) -> float:
        return self._step

    @property
    def node_ids(self) -> List[str]:
        return list(self._node_ids)

    @property
    def node_count(self) -> int:
        return len(self._node_ids)

    @property
    def sample_count(self) -> int:
        return self._n_samples

    @property
    def duration_s(self) -> float:
        return self._step * self._n_samples

    @property
    def shard_nodes(self) -> int:
        return self._shard_nodes

    @property
    def shard_count(self) -> int:
        return len(self._bounds)

    @property
    def dtype(self) -> str:
        return self._dtype

    @property
    def layout(self) -> str:
        return self._layout

    # -- shard access -----------------------------------------------------------------

    def shard_bounds(self, index: int) -> Tuple[int, int]:
        """The ``[lo, hi)`` node range of one shard."""
        return self._bounds[index]

    def shard_array(self, index: int) -> np.ndarray:
        """One shard as a read-only memmap, in its *stored* orientation.

        Node-major shards have shape ``(hi - lo, n_samples)``;
        interval-major shards ``(n_samples, hi - lo)``.  Consumers decide
        how to contract without forcing a transposed copy.
        """
        return np.load(self._files[index], mmap_mode="r")

    def iter_shards(self) -> Iterator[Tuple[int, int, np.ndarray]]:
        """Yield ``(lo, hi, stored_array)`` for every shard, in node order."""
        for index, (lo, hi) in enumerate(self._bounds):
            yield lo, hi, self.shard_array(index)

    def _node_major(self, stored: np.ndarray) -> np.ndarray:
        return stored.T if self._layout == "interval-major" else stored

    # -- streaming reductions ----------------------------------------------------------

    def mean_per_node(self) -> np.ndarray:
        """Time-averaged utilisation of each node (float64, streamed)."""
        out = np.empty(self.node_count, dtype=np.float64)
        for lo, hi, stored in self.iter_shards():
            axis = 0 if self._layout == "interval-major" else 1
            out[lo:hi] = stored.mean(axis=axis, dtype=np.float64)
        return out

    def mean_utilization(self) -> float:
        """Overall space-time average utilisation (float64 accumulation)."""
        total = 0.0
        for _, _, stored in self.iter_shards():
            total += float(stored.sum(dtype=np.float64))
        return total / (self.node_count * self._n_samples)

    def busy_core_seconds(self, node_cores: Sequence[int]) -> float:
        """Total effective core-seconds delivered across the fleet."""
        cores = np.asarray(node_cores, dtype=np.float64)
        if cores.shape != (self.node_count,):
            raise ValueError("node_cores must have one entry per node")
        total = 0.0
        for lo, hi, stored in self.iter_shards():
            axis = 0 if self._layout == "interval-major" else 1
            total += float(stored.sum(axis=axis, dtype=np.float64)
                           @ cores[lo:hi])
        return total * self._step

    def row_of(self, node_id: str) -> int:
        """The fleet-wide row index of ``node_id``."""
        try:
            return self._row_index[node_id]
        except KeyError:
            raise KeyError(f"no node {node_id!r} in trace") from None

    def node_series(self, node_id: str) -> TimeSeries:
        """One node's utilisation series (reads one shard row)."""
        row = self.row_of(node_id)
        shard = row // self._shard_nodes
        local = row - self._bounds[shard][0]
        stored = self.shard_array(shard)
        values = (stored[:, local] if self._layout == "interval-major"
                  else stored[local])
        return TimeSeries(self._start, self._step,
                          np.asarray(values, dtype=np.float64))

    def to_dense(self) -> FleetUtilization:
        """Materialise the whole fleet as a dense :class:`FleetUtilization`.

        For cross-validation at small scale only — this allocates the full
        matrix the sharded representation exists to avoid.
        """
        matrix = np.empty((self.node_count, self._n_samples), dtype=np.float64)
        for lo, hi, stored in self.iter_shards():
            matrix[lo:hi] = self._node_major(stored)
        return FleetUtilization(self._start, self._step, self._node_ids, matrix)


__all__ = [
    "FleetUtilization",
    "ShardedFleetUtilization",
    "SHARD_FORMAT_VERSION",
    "SHARD_DTYPES",
    "SHARD_LAYOUTS",
]
