"""The simulated cluster: nodes, core accounting and placement queries.

The cluster model is deliberately minimal — a set of nodes, each with a core
count and a current number of free cores — because the only thing the energy
pipeline needs from scheduling is *which cores were busy, when, and how
hard*.  Memory, topology and I/O contention are out of scope (they shift
runtimes, not the mapping from utilisation to power).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from repro.inventory.node import NodeInstance

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.workload.scheduling_index import FreeCoreIndex


@dataclass
class SimulatedNode:
    """A schedulable node.

    Attributes
    ----------
    index:
        Position of the node within the cluster (row index in traces).
    node_id:
        Identifier, normally the :class:`~repro.inventory.node.NodeInstance`
        id when the cluster is built from an inventory.
    cores:
        Total schedulable cores.
    free_cores:
        Currently unallocated cores.
    """

    index: int
    node_id: str
    cores: int
    free_cores: int

    def __post_init__(self):
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if not 0 <= self.free_cores <= self.cores:
            raise ValueError("free_cores must be within [0, cores]")

    def allocate(self, cores: int) -> None:
        """Reserve ``cores`` cores; raises if not available."""
        if cores <= 0:
            raise ValueError("cores must be positive")
        if cores > self.free_cores:
            raise ValueError(
                f"node {self.node_id} has {self.free_cores} free cores, requested {cores}"
            )
        self.free_cores -= cores

    def release(self, cores: int) -> None:
        """Return ``cores`` cores to the free pool; raises on over-release."""
        if cores <= 0:
            raise ValueError("cores must be positive")
        if self.free_cores + cores > self.cores:
            raise ValueError(f"release of {cores} cores would exceed capacity on {self.node_id}")
        self.free_cores += cores

    @property
    def busy_cores(self) -> int:
        return self.cores - self.free_cores


class SimulatedCluster:
    """A collection of :class:`SimulatedNode` with fast placement queries."""

    def __init__(self, nodes: Sequence[SimulatedNode]):
        if not nodes:
            raise ValueError("a cluster needs at least one node")
        indices = [node.index for node in nodes]
        if indices != list(range(len(nodes))):
            raise ValueError("node indices must be 0..n-1 in order")
        ids = [node.node_id for node in nodes]
        if len(ids) != len(set(ids)):
            raise ValueError("node ids must be unique")
        self._nodes: List[SimulatedNode] = list(nodes)
        self._free = np.array([node.free_cores for node in nodes], dtype=np.int64)
        # Core counts are immutable after construction; summing per query
        # (utilization() asks on every call) costs O(N) for a constant.
        self._total_cores = int(sum(node.cores for node in nodes))

    # -- constructors -------------------------------------------------------------

    @classmethod
    def homogeneous(cls, node_count: int, cores_per_node: int,
                    id_prefix: str = "node") -> "SimulatedCluster":
        """A cluster of ``node_count`` identical nodes."""
        if node_count <= 0:
            raise ValueError("node_count must be positive")
        nodes = [
            SimulatedNode(index=i, node_id=f"{id_prefix}-{i:05d}",
                          cores=cores_per_node, free_cores=cores_per_node)
            for i in range(node_count)
        ]
        return cls(nodes)

    @classmethod
    def from_inventory(cls, instances: Sequence[NodeInstance]) -> "SimulatedCluster":
        """Build a cluster from inventory node instances (using their core counts)."""
        if not instances:
            raise ValueError("from_inventory requires at least one node instance")
        nodes = []
        for index, instance in enumerate(instances):
            cores = max(instance.spec.total_cores, 1)
            nodes.append(
                SimulatedNode(index=index, node_id=instance.node_id,
                              cores=cores, free_cores=cores)
            )
        return cls(nodes)

    # -- queries -----------------------------------------------------------------

    @property
    def nodes(self) -> List[SimulatedNode]:
        return self._nodes

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def total_cores(self) -> int:
        return self._total_cores

    @property
    def free_cores(self) -> int:
        return int(self._free.sum())

    @property
    def busy_cores(self) -> int:
        return self.total_cores - self.free_cores

    def utilization(self) -> float:
        """Fraction of cores currently allocated."""
        return self.busy_cores / self.total_cores

    def find_node_with_free_cores(self, cores: int) -> Optional[int]:
        """Index of the first node with at least ``cores`` free, else ``None``.

        "First fit in index order" keeps early nodes packed, which is what
        production schedulers do to leave whole nodes free for wide jobs.
        """
        if cores <= 0:
            raise ValueError("cores must be positive")
        candidates = np.nonzero(self._free >= cores)[0]
        if candidates.size == 0:
            return None
        return int(candidates[0])

    def core_index(self) -> "FreeCoreIndex":
        """A :class:`~repro.workload.scheduling_index.FreeCoreIndex` snapshot.

        Answers the same leftmost-fit query as
        :meth:`find_node_with_free_cores` in O(log N); the caller owns the
        returned index and must mirror subsequent :meth:`allocate` /
        :meth:`release` calls into it (the indexed scheduler engine does).
        """
        from repro.workload.scheduling_index import FreeCoreIndex

        return FreeCoreIndex(int(value) for value in self._free)

    # -- state changes -------------------------------------------------------------

    def allocate(self, node_index: int, cores: int) -> None:
        """Allocate ``cores`` on node ``node_index``."""
        self._nodes[node_index].allocate(cores)
        self._free[node_index] -= cores

    def release(self, node_index: int, cores: int) -> None:
        """Release ``cores`` on node ``node_index``."""
        self._nodes[node_index].release(cores)
        self._free[node_index] += cores

    def sync_free_cores(self, free_counts: Sequence[int]) -> None:
        """Overwrite every node's free-core count in one batch.

        Used by the indexed scheduler engine, which tracks free cores in
        its own structures during the event loop (paying two numpy scalar
        updates per placement would dominate its runtime) and writes the
        final state back here so the cluster ends bit-identical to an
        incrementally updated run.
        """
        if len(free_counts) != len(self._nodes):
            raise ValueError(
                f"expected {len(self._nodes)} free-core counts, "
                f"got {len(free_counts)}")
        for node, free in zip(self._nodes, free_counts):
            if not 0 <= free <= node.cores:
                raise ValueError(
                    f"free_cores must be within [0, cores] on {node.node_id}")
            node.free_cores = int(free)
        self._free[:] = np.asarray(free_counts, dtype=np.int64)

    def reset(self) -> None:
        """Free every core on every node."""
        for index, node in enumerate(self._nodes):
            node.free_cores = node.cores
            self._free[index] = node.cores


__all__ = ["SimulatedNode", "SimulatedCluster"]
