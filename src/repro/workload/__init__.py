"""Workload and scheduler simulation substrate.

The paper measures a *live* infrastructure: the energy in Table 2 reflects
whatever jobs happened to be running during the 24-hour snapshot.  Since we
cannot measure real hardware, this package simulates that load:

* :mod:`~repro.workload.jobs` — synthetic batch jobs (arrival process, size
  and runtime distributions) representative of the particle-physics /
  astronomy workloads IRIS supports.
* :mod:`~repro.workload.cluster` — the simulated cluster: a set of nodes
  with core counts and an allocation map.
* :mod:`~repro.workload.scheduler` — an event-driven FCFS + EASY-backfill
  scheduler that places jobs on nodes over the snapshot window.
* :mod:`~repro.workload.utilization` — per-node and cluster-level
  utilisation traces, the interface consumed by the power models.
* :mod:`~repro.workload.fleet` — the columnar :class:`FleetUtilization`
  engine: the whole fleet as one (nodes × intervals) matrix, built
  vectorizedly from scheduler placements.

The separation mirrors real deployments: the scheduler knows nothing about
power, and the power instruments observe only the utilisation the schedule
produces.
"""

from repro.workload.jobs import Job, JobGenerator, WorkloadProfile
from repro.workload.cluster import SimulatedCluster, SimulatedNode
from repro.workload.fleet import FleetUtilization
from repro.workload.scheduler import BackfillScheduler, SchedulerStatistics
from repro.workload.utilization import UtilizationTrace, cluster_mean_utilization
from repro.workload.swf import SWFReadResult, read_swf, write_swf

__all__ = [
    "FleetUtilization",
    "Job",
    "JobGenerator",
    "WorkloadProfile",
    "SimulatedCluster",
    "SimulatedNode",
    "BackfillScheduler",
    "SchedulerStatistics",
    "UtilizationTrace",
    "cluster_mean_utilization",
    "SWFReadResult",
    "read_swf",
    "write_swf",
]
