"""Event-driven FCFS + EASY-backfill scheduler.

The scheduler places a stream of :class:`~repro.workload.jobs.Job` onto a
:class:`~repro.workload.cluster.SimulatedCluster` and records, for every
placement, which node ran it, when it started and finished, and how hard it
drove its cores.  The output is a :class:`~repro.workload.utilization.UtilizationTrace`
covering the requested window, plus summary statistics.

Scheduling policy
-----------------
* **FCFS**: jobs start in submission order whenever the head of the queue
  fits on some node.
* **EASY backfill**: when the head job does not fit, a *reservation* is
  computed for it (the earliest time enough cores will be free on one node,
  assuming no further arrivals), and later jobs may start out of order as
  long as they terminate before that reservation or do not use the reserved
  node's cores.  This is the policy most production HPC schedulers default
  to and it keeps simulated utilisation realistically high.

Jobs in this model never span nodes (matching the high-throughput IRIS
workload); wide requests are capped at the node core count by the job
generator.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.workload.cluster import SimulatedCluster
from repro.workload.fleet import FleetUtilization
from repro.workload.jobs import Job
from repro.workload.scheduling_index import (
    PendingJobQueue,
    earliest_fit_time,
)
from repro.workload.utilization import UtilizationTrace

#: Recognised substrate engines: ``columnar`` is the vectorised default,
#: ``oracle`` the retained per-placement/per-node reference implementation.
ENGINES = ("columnar", "oracle")

#: Recognised scheduling-loop engines: ``indexed`` is the default
#: (segment-tree first fit, tombstoned deque queue, lazy EASY
#: reservation), ``reference`` the seed event loop retained as the
#: oracle.  Both produce bit-identical placement sequences.
SCHEDULER_ENGINES = ("indexed", "reference")


@dataclass(frozen=True)
class Placement:
    """A job's execution record."""

    job: Job
    node_index: int
    start_time_s: float
    end_time_s: float

    @property
    def wait_time_s(self) -> float:
        return self.start_time_s - self.job.submit_time_s


@dataclass
class SchedulerStatistics:
    """Summary statistics of a scheduling run."""

    jobs_submitted: int = 0
    jobs_started: int = 0
    jobs_completed_in_window: int = 0
    jobs_unschedulable: int = 0
    mean_wait_s: float = 0.0
    max_wait_s: float = 0.0
    backfilled_jobs: int = 0
    core_seconds_delivered: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """The statistics as a plain dict (for reports and JSON output)."""
        return {
            "jobs_submitted": self.jobs_submitted,
            "jobs_started": self.jobs_started,
            "jobs_completed_in_window": self.jobs_completed_in_window,
            "jobs_unschedulable": self.jobs_unschedulable,
            "mean_wait_s": self.mean_wait_s,
            "max_wait_s": self.max_wait_s,
            "backfilled_jobs": self.backfilled_jobs,
            "core_seconds_delivered": self.core_seconds_delivered,
        }


class BackfillScheduler:
    """FCFS + EASY-backfill scheduler over a simulated cluster.

    Parameters
    ----------
    cluster:
        The cluster to schedule onto.  Its allocation state is reset at the
        start of every :meth:`run`.
    backfill_depth:
        How many queued jobs behind the head are examined as backfill
        candidates each time the head is blocked.
    """

    def __init__(self, cluster: SimulatedCluster, backfill_depth: int = 50):
        if backfill_depth < 0:
            raise ValueError("backfill_depth must be non-negative")
        self._cluster = cluster
        self._backfill_depth = backfill_depth

    # -- core scheduling loop ----------------------------------------------------

    def run(
        self,
        jobs: Sequence[Job],
        duration_s: float,
        scheduler_engine: str = "indexed",
    ) -> Tuple[List[Placement], SchedulerStatistics]:
        """Schedule ``jobs`` and return placements plus statistics.

        The simulation processes submissions in time order and runs until
        every submitted job has started (so the utilisation trace covering
        ``[0, duration_s)`` reflects the sustained load), but statistics and
        traces only consider the requested window.

        ``scheduler_engine`` selects the loop implementation: ``indexed``
        (default) resolves first-fit via a segment-tree index, keeps the
        pending queue in a tombstoned deque and computes EASY reservations
        by a lazy early-exit heap walk; ``reference`` is the seed event
        loop, retained as the oracle.  The two are bit-identical — same
        placements, same statistics — differing only in wall-clock.
        """
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if scheduler_engine not in SCHEDULER_ENGINES:
            raise ValueError(
                f"unknown scheduler engine {scheduler_engine!r}; "
                f"expected one of {', '.join(SCHEDULER_ENGINES)}")
        cluster = self._cluster
        cluster.reset()
        largest_node_cores = max(node.cores for node in cluster.nodes)
        pending = sorted(jobs, key=lambda job: (job.submit_time_s, job.job_id))
        # Jobs wider than the widest node can never start in a single-node
        # placement model; drop them up front and account for them.
        unschedulable = [job for job in pending if job.cores > largest_node_cores]
        pending = [job for job in pending if job.cores <= largest_node_cores]
        stats = SchedulerStatistics(
            jobs_submitted=len(pending) + len(unschedulable),
            jobs_unschedulable=len(unschedulable),
        )
        if scheduler_engine == "indexed":
            placements, waits, backfilled = self._run_indexed(pending)
        else:
            placements, waits, backfilled = self._run_reference(pending)
        stats.jobs_started = len(placements)
        stats.backfilled_jobs = backfilled
        stats.jobs_completed_in_window = sum(
            1 for p in placements if p.end_time_s <= duration_s
        )
        stats.mean_wait_s = float(np.mean(waits)) if waits else 0.0
        stats.max_wait_s = float(np.max(waits)) if waits else 0.0
        stats.core_seconds_delivered = float(
            sum(
                max(0.0, min(p.end_time_s, duration_s) - min(p.start_time_s, duration_s))
                * p.job.cores
                for p in placements
            )
        )
        return placements, stats

    def _run_reference(
        self, pending: List[Job],
    ) -> Tuple[List[Placement], List[float], int]:
        """The seed event loop, retained as the bit-exactness oracle."""
        cluster = self._cluster
        placements: List[Placement] = []
        # (end_time, node_index, cores) min-heap of running jobs.
        running: List[Tuple[float, int, int]] = []
        queue: List[Job] = []
        now = 0.0
        submit_index = 0
        backfilled = 0
        waits: List[float] = []

        def release_finished(until: float) -> None:
            nonlocal now
            while running and running[0][0] <= until:
                end_time, node_index, cores = heapq.heappop(running)
                cluster.release(node_index, cores)
                now = max(now, end_time)

        def try_start(job: Job, at_time: float) -> Optional[Placement]:
            node_index = cluster.find_node_with_free_cores(job.cores)
            if node_index is None:
                return None
            cluster.allocate(node_index, job.cores)
            end_time = at_time + job.runtime_s
            heapq.heappush(running, (end_time, node_index, job.cores))
            placement = Placement(job=job, node_index=node_index,
                                  start_time_s=at_time, end_time_s=end_time)
            placements.append(placement)
            waits.append(placement.wait_time_s)
            return placement

        while submit_index < len(pending) or queue:
            # Admit all jobs submitted up to the current time.
            while submit_index < len(pending) and pending[submit_index].submit_time_s <= now:
                queue.append(pending[submit_index])
                submit_index += 1
            progressed = False
            # FCFS: start queue-head jobs while they fit.
            while queue:
                release_finished(now)
                placement = try_start(queue[0], now)
                if placement is None:
                    break
                queue.pop(0)
                progressed = True
            # EASY backfill when the head is blocked.
            if queue:
                reservation = self._head_reservation(queue[0], running, cluster)
                candidates = queue[1: 1 + self._backfill_depth]
                for candidate in list(candidates):
                    if now + candidate.runtime_s <= reservation:
                        placement = try_start(candidate, now)
                        if placement is not None:
                            queue.remove(candidate)
                            backfilled += 1
                            progressed = True
            if queue or submit_index < len(pending):
                # Advance time to the next event: a completion or a submission.
                next_completion = running[0][0] if running else float("inf")
                next_submission = (
                    pending[submit_index].submit_time_s
                    if submit_index < len(pending)
                    else float("inf")
                )
                next_event = min(next_completion, next_submission)
                if next_event == float("inf"):
                    break  # pragma: no cover - defensive; cannot happen with valid input
                if not progressed and next_event <= now:
                    # Avoid an infinite loop if no event advances time —
                    # but never jump past a submission arriving inside the
                    # skipped interval (next_submission > now here, since
                    # everything up to now was already admitted).
                    next_event = min(now + 1.0, next_submission)
                release_finished(next_event)
                now = max(now, next_event)

        return placements, waits, backfilled

    def _run_indexed(
        self, pending: List[Job],
    ) -> Tuple[List[Placement], List[float], int]:
        """The indexed event loop: same decisions, sublinear data structures.

        Every decision point mirrors :meth:`_run_reference` exactly —
        first-fit answers come from the cluster's segment-tree index
        instead of an O(N) scan, the pending queue is a tombstoned deque
        instead of a ``pop(0)``/``remove`` list, admission batches over a
        pre-sorted submit-time array via ``searchsorted``, and the EASY
        reservation walks the running heap lazily with early exit, cached
        on ``(head job, allocation state)`` so a blocked head crossing
        several arrival-only events does not recompute it.
        """
        cluster = self._cluster
        placements: List[Placement] = []
        # Local free-core mirror (plain ints) plus the leftmost-fit index.
        # The cluster is NOT updated per operation — two numpy scalar
        # updates per placement would dominate this loop — its state is
        # written back wholesale after the loop (``sync_free_cores``),
        # ending bit-identical to the reference's incremental updates.
        free = [node.free_cores for node in cluster.nodes]
        index = cluster.core_index()
        submit_times = np.array([job.submit_time_s for job in pending],
                                dtype=np.float64)
        # Plain-float copy: per-event comparisons against the next submit
        # time must not pay numpy scalar extraction.
        submit_list: List[float] = submit_times.tolist()
        # (end_time, node_index, cores) min-heap of running jobs.
        running: List[Tuple[float, int, int]] = []
        queue = PendingJobQueue()
        now = 0.0
        submit_index = 0
        count = len(pending)
        backfilled = 0
        waits: List[float] = []
        # Reservation cache: valid while the head job and the allocation
        # state (version-stamped on every allocate/release) are unchanged,
        # so a head blocked across several arrival-only events computes
        # its reservation once.
        version = 0
        cached_head_id = -1
        cached_version = -1
        cached_reservation = INFINITY = float("inf")
        # Hot-path local bindings (attribute lookups add up at fleet scale).
        heappush, heappop = heapq.heappush, heapq.heappop
        index_first_fit, index_set_free = index.first_fit, index.set_free
        queue_head, queue_pop_head = queue.head, queue.pop_head
        placements_append, waits_append = placements.append, waits.append
        depth = self._backfill_depth

        while submit_index < count or queue:
            # Admit all jobs submitted up to the current time.  The batch
            # boundary comes from one searchsorted over the pre-sorted
            # submit times, guarded by a plain compare so the (frequent)
            # nothing-to-admit case costs no numpy call at all.
            if submit_index < count and submit_list[submit_index] <= now:
                admit_until = int(np.searchsorted(submit_times, now,
                                                  side="right"))
                while submit_index < admit_until:
                    queue.append(pending[submit_index])
                    submit_index += 1
            progressed = False
            # FCFS: start queue-head jobs while they fit.
            while queue:
                while running and running[0][0] <= now:
                    end_time, node_index, cores = heappop(running)
                    new_free = free[node_index] + cores
                    free[node_index] = new_free
                    index_set_free(node_index, new_free)
                    version += 1
                    if end_time > now:  # pragma: no cover - end <= now here
                        now = end_time
                job = queue_head()
                cores = job.cores
                node_index = index_first_fit(cores)
                if node_index is None:
                    break
                new_free = free[node_index] - cores
                free[node_index] = new_free
                index_set_free(node_index, new_free)
                version += 1
                end_time = now + job.runtime_s
                heappush(running, (end_time, node_index, cores))
                placements_append(Placement(job=job, node_index=node_index,
                                            start_time_s=now,
                                            end_time_s=end_time))
                waits_append(now - job.submit_time_s)
                queue_pop_head()
                progressed = True
            # EASY backfill when the head is blocked.
            if queue:
                head = queue_head()
                if head.job_id != cached_head_id or version != cached_version:
                    cached_reservation = earliest_fit_time(
                        head.cores, running, free)
                    cached_head_id = head.job_id
                    cached_version = version
                reservation = cached_reservation
                for candidate in queue.backfill_candidates(depth):
                    if now + candidate.runtime_s <= reservation:
                        cores = candidate.cores
                        node_index = index_first_fit(cores)
                        if node_index is None:
                            continue
                        new_free = free[node_index] - cores
                        free[node_index] = new_free
                        index_set_free(node_index, new_free)
                        version += 1
                        end_time = now + candidate.runtime_s
                        heappush(running, (end_time, node_index, cores))
                        placements_append(Placement(
                            job=candidate, node_index=node_index,
                            start_time_s=now, end_time_s=end_time))
                        waits_append(now - candidate.submit_time_s)
                        queue.discard(candidate)
                        backfilled += 1
                        progressed = True
            if queue or submit_index < count:
                # Advance time to the next event: a completion or a submission.
                next_completion = running[0][0] if running else INFINITY
                next_submission = (submit_list[submit_index]
                                   if submit_index < count else INFINITY)
                next_event = (next_completion
                              if next_completion <= next_submission
                              else next_submission)
                if next_event == INFINITY:
                    break  # pragma: no cover - defensive; cannot happen with valid input
                if not progressed and next_event <= now:
                    # Same anti-stall clamp as the reference loop: advance,
                    # but never jump past a pending submission.
                    next_event = min(now + 1.0, next_submission)
                while running and running[0][0] <= next_event:
                    end_time, node_index, cores = heappop(running)
                    new_free = free[node_index] + cores
                    free[node_index] = new_free
                    index_set_free(node_index, new_free)
                    version += 1
                    if end_time > now:
                        now = end_time
                if next_event > now:
                    now = next_event

        cluster.sync_free_cores(free)
        return placements, waits, backfilled

    @staticmethod
    def _head_reservation(
        head: Job,
        running: List[Tuple[float, int, int]],
        cluster: SimulatedCluster,
    ) -> float:
        """Earliest time the blocked head job is guaranteed to fit somewhere.

        Starting from each node's currently free cores, walk the running
        jobs in completion order, accumulating freed cores per node; the
        reservation is the completion time at which some node first has
        enough free cores for the head job.  Conservative (ignores future
        submissions), exactly as EASY does.
        """
        freed: Dict[int, int] = {
            node.index: node.free_cores for node in cluster.nodes
        }
        for end_time, node_index, cores in sorted(running):
            freed[node_index] = freed.get(node_index, 0) + cores
            if freed[node_index] >= head.cores:
                return end_time
        return float("inf")

    # -- trace construction --------------------------------------------------------

    def build_trace(
        self,
        placements: Sequence[Placement],
        duration_s: float,
        step_s: float = 60.0,
        start_s: float = 0.0,
        engine: str = "columnar",
    ) -> UtilizationTrace:
        """Convert placements into a per-node utilisation trace.

        Each placement contributes ``cores * cpu_intensity / node_cores`` to
        its node's utilisation for every sample interval it overlaps,
        partial first/last intervals pro-rated.  The default ``columnar``
        engine does the interval-overlap math on arrays
        (:meth:`~repro.workload.fleet.FleetUtilization.from_placements`);
        ``engine="oracle"`` runs the historical per-placement loop, kept for
        cross-validation and benchmarking.
        """
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {', '.join(ENGINES)}")
        if engine == "columnar":
            return FleetUtilization.from_placements(
                placements,
                [node.node_id for node in self._cluster.nodes],
                [node.cores for node in self._cluster.nodes],
                duration_s,
                step_s=step_s,
                start_s=start_s,
            )
        return self.build_trace_loop(placements, duration_s,
                                     step_s=step_s, start_s=start_s)

    def build_trace_loop(
        self,
        placements: Sequence[Placement],
        duration_s: float,
        step_s: float = 60.0,
        start_s: float = 0.0,
    ) -> UtilizationTrace:
        """The seed per-placement trace builder, retained as the oracle.

        Numerically equivalent to the columnar engine (identical up to
        floating-point summation order); used by the fleet-engine benchmark
        and equivalence tests to cross-validate the vectorised path.
        """
        if step_s <= 0:
            raise ValueError("step_s must be positive")
        n_samples = int(round(duration_s / step_s))
        if n_samples <= 0:
            raise ValueError("duration_s must cover at least one sample")
        node_ids = [node.node_id for node in self._cluster.nodes]
        node_cores = np.array([node.cores for node in self._cluster.nodes], dtype=np.float64)
        matrix = np.zeros((len(node_ids), n_samples), dtype=np.float64)
        edges = start_s + step_s * np.arange(n_samples + 1)
        for placement in placements:
            t0 = max(placement.start_time_s, start_s)
            t1 = min(placement.end_time_s, start_s + duration_s)
            if t1 <= t0:
                continue
            first = int((t0 - start_s) // step_s)
            last = min(int((t1 - start_s) // step_s), n_samples - 1)
            weight = placement.job.cores * placement.job.cpu_intensity
            if first == last:
                fraction = (t1 - t0) / step_s
                matrix[placement.node_index, first] += weight * fraction
                continue
            # First partial interval.
            matrix[placement.node_index, first] += weight * (edges[first + 1] - t0) / step_s
            # Full intervals.
            if last - first > 1:
                matrix[placement.node_index, first + 1: last] += weight
            # Last partial interval.
            matrix[placement.node_index, last] += weight * (t1 - edges[last]) / step_s
        matrix /= node_cores[:, None]
        np.clip(matrix, 0.0, 1.0, out=matrix)
        return UtilizationTrace(start_s, step_s, node_ids, matrix)

    def simulate(
        self,
        jobs: Sequence[Job],
        duration_s: float,
        step_s: float = 60.0,
        engine: str = "columnar",
        scheduler_engine: str = "indexed",
    ) -> Tuple[UtilizationTrace, SchedulerStatistics]:
        """Run the scheduler and return the utilisation trace and statistics.

        ``engine`` selects the trace-construction substrate
        (:data:`ENGINES`); ``scheduler_engine`` the placement loop
        (:data:`SCHEDULER_ENGINES`).
        """
        placements, stats = self.run(jobs, duration_s,
                                     scheduler_engine=scheduler_engine)
        trace = self.build_trace(placements, duration_s, step_s=step_s,
                                 engine=engine)
        return trace, stats


__all__ = [
    "BackfillScheduler",
    "ENGINES",
    "SCHEDULER_ENGINES",
    "Placement",
    "SchedulerStatistics",
]
