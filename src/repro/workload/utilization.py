"""Per-node utilisation traces.

A :class:`UtilizationTrace` is the interface between the scheduler and the
power models: a matrix of shape ``(n_nodes, n_samples)`` whose entries are
the *effective* utilisation of each node in each interval — busy cores
weighted by how hard the jobs drive them (their ``cpu_intensity``), divided
by the node's core count.  Entries therefore lie in ``[0, 1]``.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.timeseries.series import TimeSeries


class UtilizationTrace:
    """Effective utilisation of every node on a regular sampling grid.

    Parameters
    ----------
    start / step:
        Sampling grid (seconds since the simulation epoch; fixed step).
    node_ids:
        One id per row of ``matrix``.
    matrix:
        Array of shape ``(len(node_ids), n_samples)`` with values in [0, 1].
    """

    __slots__ = ("_start", "_step", "_node_ids", "_matrix")

    def __init__(self, start: float, step: float, node_ids: Sequence[str],
                 matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=np.float64)
        if step <= 0:
            raise ValueError("step must be positive")
        if matrix.ndim != 2:
            raise ValueError("matrix must be two-dimensional")
        if matrix.shape[0] != len(node_ids):
            raise ValueError("matrix row count must match the number of node ids")
        if matrix.shape[1] == 0:
            raise ValueError("trace must contain at least one sample")
        if len(set(node_ids)) != len(node_ids):
            raise ValueError("node ids must be unique")
        if np.isnan(matrix).any():
            raise ValueError("utilisation matrix must not contain NaN")
        if (matrix < -1e-9).any() or (matrix > 1.0 + 1e-9).any():
            raise ValueError("utilisation values must lie in [0, 1]")
        self._start = float(start)
        self._step = float(step)
        self._node_ids = list(node_ids)
        self._matrix = np.clip(matrix, 0.0, 1.0)

    # -- accessors -----------------------------------------------------------------

    @property
    def start(self) -> float:
        return self._start

    @property
    def step(self) -> float:
        return self._step

    @property
    def node_ids(self) -> List[str]:
        return list(self._node_ids)

    @property
    def node_count(self) -> int:
        return len(self._node_ids)

    @property
    def sample_count(self) -> int:
        return int(self._matrix.shape[1])

    @property
    def duration_s(self) -> float:
        return self._step * self.sample_count

    @property
    def matrix(self) -> np.ndarray:
        """Read-only view of the utilisation matrix."""
        view = self._matrix.view()
        view.flags.writeable = False
        return view

    # -- derived series ---------------------------------------------------------

    def node_series(self, node_id: str) -> TimeSeries:
        """The utilisation series of one node."""
        try:
            row = self._node_ids.index(node_id)
        except ValueError:
            raise KeyError(f"no node {node_id!r} in trace") from None
        return TimeSeries(self._start, self._step, self._matrix[row])

    def mean_per_node(self) -> np.ndarray:
        """Time-averaged utilisation of each node."""
        return self._matrix.mean(axis=1)

    def cluster_series(self) -> TimeSeries:
        """Cluster-average utilisation over time (unweighted node mean)."""
        return TimeSeries(self._start, self._step, self._matrix.mean(axis=0))

    def mean_utilization(self) -> float:
        """Overall space-time average utilisation."""
        return float(self._matrix.mean())

    def subset(self, node_ids: Sequence[str]) -> "UtilizationTrace":
        """A trace restricted to the given nodes (in the given order)."""
        rows = []
        for node_id in node_ids:
            try:
                rows.append(self._node_ids.index(node_id))
            except ValueError:
                raise KeyError(f"no node {node_id!r} in trace") from None
        return UtilizationTrace(self._start, self._step, list(node_ids),
                                self._matrix[rows])

    @classmethod
    def constant(cls, start: float, step: float, node_ids: Sequence[str],
                 n_samples: int, value: float) -> "UtilizationTrace":
        """A trace where every node holds ``value`` for every sample."""
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        matrix = np.full((len(node_ids), n_samples), float(value))
        return cls(start, step, node_ids, matrix)


def cluster_mean_utilization(trace: UtilizationTrace) -> float:
    """Convenience alias for :meth:`UtilizationTrace.mean_utilization`."""
    return trace.mean_utilization()


__all__ = ["UtilizationTrace", "cluster_mean_utilization"]
