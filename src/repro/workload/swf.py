"""Reading and writing job logs in the Standard Workload Format (SWF).

Real facilities keep scheduler accounting logs, and the de-facto interchange
format for them is the Parallel Workloads Archive's SWF: one line per job,
eighteen whitespace-separated fields, ``;`` comment lines for metadata.
Supporting it means an operator can re-run this library's audit against the
jobs that *actually* ran on their system instead of the synthetic workload —
exactly the "what was the DRI being used for" dimension the paper defers.

Only the fields the energy pipeline needs are interpreted:

====  =======================  ================================
 #    SWF field                Use here
====  =======================  ================================
 1    job number               ``Job.job_id``
 2    submit time (s)          ``Job.submit_time_s``
 4    run time (s)             ``Job.runtime_s``
 5    allocated processors     ``Job.cores``
 11   requested time (s)       fallback when run time is missing
====  =======================  ================================

Unknown / missing values are encoded as ``-1`` in SWF; jobs without a usable
runtime or processor count are skipped (and counted) rather than guessed.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Sequence, Tuple, Union

from repro.workload.jobs import Job

PathLike = Union[str, Path]

#: Number of fields in a standard SWF record.
SWF_FIELD_COUNT = 18


@dataclass(frozen=True)
class SWFReadResult:
    """Jobs parsed from an SWF file plus parsing statistics."""

    jobs: Tuple[Job, ...]
    skipped_records: int
    comment_lines: int

    def __post_init__(self):
        object.__setattr__(self, "jobs", tuple(self.jobs))
        if self.skipped_records < 0 or self.comment_lines < 0:
            raise ValueError("counters must be non-negative")

    @property
    def job_count(self) -> int:
        return len(self.jobs)


def _parse_record(fields: Sequence[str], cpu_intensity: float) -> Job | None:
    """Convert one SWF record to a :class:`Job`, or ``None`` if unusable."""
    job_id = int(float(fields[0]))
    submit = float(fields[1])
    runtime = float(fields[3])
    cores = int(float(fields[4]))
    requested_time = float(fields[10]) if len(fields) > 10 else -1.0
    if runtime <= 0:
        runtime = requested_time
    if runtime <= 0 or cores <= 0 or job_id < 0 or submit < 0:
        return None
    return Job(
        job_id=job_id,
        submit_time_s=submit,
        cores=cores,
        runtime_s=runtime,
        cpu_intensity=cpu_intensity,
    )


def read_swf(path: PathLike, cpu_intensity: float = 1.0,
             max_jobs: int | None = None) -> SWFReadResult:
    """Parse an SWF file into jobs.

    Parameters
    ----------
    path:
        The SWF file.
    cpu_intensity:
        SWF does not record how hard jobs drove their cores, so a single
        intensity is applied to every job (1.0 = fully compute bound).
    max_jobs:
        Stop after this many parsed jobs (useful for sampling huge archives).
    """
    if not 0.0 < cpu_intensity <= 1.0:
        raise ValueError("cpu_intensity must be in (0, 1]")
    if max_jobs is not None and max_jobs <= 0:
        raise ValueError("max_jobs must be positive when given")
    jobs: List[Job] = []
    skipped = 0
    comments = 0
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                continue
            if stripped.startswith(";"):
                comments += 1
                continue
            fields = stripped.split()
            if len(fields) < 5:
                skipped += 1
                continue
            job = _parse_record(fields, cpu_intensity)
            if job is None:
                skipped += 1
                continue
            jobs.append(job)
            if max_jobs is not None and len(jobs) >= max_jobs:
                break
    return SWFReadResult(jobs=tuple(jobs), skipped_records=skipped,
                         comment_lines=comments)


def write_swf(path: PathLike, jobs: Sequence[Job],
              header_comments: Sequence[str] = ()) -> None:
    """Write jobs to an SWF file (fields this library does not model are -1).

    Useful for exporting a synthetic workload so it can be replayed by other
    SWF-consuming tools, or for round-trip testing.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for comment in header_comments:
            handle.write(f"; {comment}\n")
        for job in jobs:
            fields = [-1.0] * SWF_FIELD_COUNT
            fields[0] = job.job_id
            fields[1] = job.submit_time_s
            fields[2] = -1            # wait time: scheduling decides this
            fields[3] = job.runtime_s
            fields[4] = job.cores
            fields[7] = job.cores     # requested processors
            fields[10] = job.runtime_s  # requested time
            handle.write(" ".join(
                str(int(value)) if float(value).is_integer() else f"{value:.1f}"
                for value in fields
            ) + "\n")


__all__ = ["SWFReadResult", "read_swf", "write_swf", "SWF_FIELD_COUNT"]
