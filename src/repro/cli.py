"""Command-line interface for the audit pipeline.

Installed as ``python -m repro``.  The subcommands mirror the paper's
evaluation artefacts so the whole reproduction can be driven without writing
any Python:

``inventory``
    Print the Table 1 hardware inventory.
``intensity``
    Print the Figure 1 synthetic GB grid-intensity summary (and optionally
    the text chart).
``snapshot``
    Run the simulated IRIS measurement campaign (Table 2) and the carbon
    model, optionally writing the regenerated tables to CSV.
``scenarios``
    Print the Table 3 (active) and Table 4 (embodied) scenario grids for a
    given energy total and fleet size.
``uncertainty``
    Run the Monte-Carlo analysis over the paper's input ranges.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.core.active import ActiveEnergyInput
from repro.core.scenarios import ActiveScenarioGrid, EmbodiedScenarioGrid
from repro.core.uncertainty import MonteCarloCarbonModel
from repro.grid.synthetic import uk_november_2022_intensity
from repro.inventory.iris import (
    IRIS_IMPLIED_SERVER_COUNT,
    PAPER_TABLE2_TOTAL_KWH,
    iris_inventory_table,
)
from repro.io.csvio import write_rows_csv
from repro.reporting.figures import ascii_line_chart
from repro.reporting.tables import format_kv_table, format_table
from repro.snapshot.config import default_iris_snapshot_config
from repro.snapshot.experiment import SnapshotExperiment
from repro.units.quantities import Duration


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Total environmental impact accounting for computing infrastructures",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("inventory", help="print the Table 1 hardware inventory")

    intensity = subparsers.add_parser(
        "intensity", help="summarise the synthetic Figure 1 grid-intensity month")
    intensity.add_argument("--days", type=float, default=30.0,
                           help="length of the generated window in days")
    intensity.add_argument("--chart", action="store_true",
                           help="also print the ASCII chart")

    snapshot = subparsers.add_parser(
        "snapshot", help="run the simulated IRIS snapshot (Table 2 + carbon model)")
    snapshot.add_argument("--scale", type=float, default=1.0,
                          help="node-count scale factor in (0, 1]")
    snapshot.add_argument("--intensity", type=float, default=175.0,
                          help="grid carbon intensity (gCO2e/kWh) for the model")
    snapshot.add_argument("--pue", type=float, default=1.3,
                          help="PUE for the facility overhead")
    snapshot.add_argument("--output-dir", type=Path, default=None,
                          help="directory to write the regenerated tables as CSV")

    scenarios = subparsers.add_parser(
        "scenarios", help="print the Table 3 and Table 4 scenario grids")
    scenarios.add_argument("--energy-kwh", type=float, default=PAPER_TABLE2_TOTAL_KWH,
                           help="measured IT energy for the period (kWh)")
    scenarios.add_argument("--servers", type=int, default=IRIS_IMPLIED_SERVER_COUNT,
                           help="number of servers carrying embodied carbon")
    scenarios.add_argument("--period-hours", type=float, default=24.0,
                           help="evaluation period length in hours")

    uncertainty = subparsers.add_parser(
        "uncertainty", help="Monte-Carlo analysis over the paper's input ranges")
    uncertainty.add_argument("--energy-kwh", type=float, default=PAPER_TABLE2_TOTAL_KWH)
    uncertainty.add_argument("--servers", type=int, default=IRIS_IMPLIED_SERVER_COUNT)
    uncertainty.add_argument("--samples", type=int, default=20000)
    uncertainty.add_argument("--seed", type=int, default=0)

    return parser


# --------------------------------------------------------------------------
# subcommand implementations
# --------------------------------------------------------------------------

def _cmd_inventory(_args: argparse.Namespace) -> int:
    print(format_table(iris_inventory_table(),
                       title="Table 1 - IRIS hardware included in the project",
                       float_format=",.0f"))
    return 0


def _cmd_intensity(args: argparse.Namespace) -> int:
    if args.days <= 0:
        print("error: --days must be positive", file=sys.stderr)
        return 2
    series = uk_november_2022_intensity(days=args.days)
    if args.chart:
        print(ascii_line_chart(series.series.values, width=72, height=14,
                               title="GB grid carbon intensity (synthetic)",
                               y_label="gCO2e/kWh"))
        print()
    references = series.reference_values()
    print(format_kv_table({
        "window days": args.days,
        "samples": len(series.series),
        "minimum gCO2/kWh": series.min_intensity().g_per_kwh,
        "low reference (5th pct)": references["low"].g_per_kwh,
        "medium reference (mean)": references["medium"].g_per_kwh,
        "high reference (95th pct)": references["high"].g_per_kwh,
        "maximum gCO2/kWh": series.max_intensity().g_per_kwh,
    }, title="Figure 1 summary"))
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    if not 0.0 < args.scale <= 1.0:
        print("error: --scale must be in (0, 1]", file=sys.stderr)
        return 2
    config = default_iris_snapshot_config(node_scale=args.scale)
    snapshot = SnapshotExperiment(config).run()
    rows = snapshot.table2_rows()
    print(format_table(
        rows,
        columns=["site", "facility", "pdu", "ipmi", "turbostat", "nodes"],
        title="Table 2 - Active energy measured for the snapshot period (kWh)",
    ))
    print(f"\nTotal best-estimate energy: {snapshot.total_best_estimate_kwh:,.0f} kWh "
          f"(paper: {PAPER_TABLE2_TOTAL_KWH:,.0f} kWh at full scale)")
    result = snapshot.evaluate_model(carbon_intensity_g_per_kwh=args.intensity,
                                     pue=args.pue)
    print()
    print(format_kv_table({
        "carbon intensity gCO2/kWh": args.intensity,
        "pue": args.pue,
        "active kgCO2e": result.active.total_kg,
        "embodied kgCO2e": result.embodied.total_kg,
        "total kgCO2e": result.total_kg,
        "embodied fraction": result.embodied_fraction,
    }, title="Carbon model (equation 1)", float_format=",.2f"))
    if args.output_dir is not None:
        write_rows_csv(args.output_dir / "table2_energy.csv", rows)
        write_rows_csv(args.output_dir / "table3_active_carbon.csv",
                       snapshot.table3_rows())
        write_rows_csv(args.output_dir / "table4_embodied.csv", snapshot.table4_rows())
        print(f"\nWrote tables to {args.output_dir}")
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    if args.energy_kwh < 0 or args.servers <= 0 or args.period_hours <= 0:
        print("error: energy must be >= 0, servers and period positive", file=sys.stderr)
        return 2
    energy = ActiveEnergyInput(period=Duration.from_hours(args.period_hours),
                               node_energy_kwh={"total": args.energy_kwh})
    print(format_table(
        ActiveScenarioGrid().table3_rows(energy),
        columns=["intensity_level", "intensity_g_per_kwh", "pue", "carbon_kg"],
        title=f"Table 3 - Active carbon for {args.energy_kwh:,.0f} kWh (kgCO2e)",
    ))
    print()
    print(format_table(
        EmbodiedScenarioGrid().table4_rows(args.servers, args.period_hours / 24.0),
        title=f"Table 4 - Embodied carbon for {args.servers} servers (kgCO2e)",
        float_format=",.2f",
    ))
    return 0


def _cmd_uncertainty(args: argparse.Namespace) -> int:
    if args.samples <= 0:
        print("error: --samples must be positive", file=sys.stderr)
        return 2
    model = MonteCarloCarbonModel(it_energy_kwh=args.energy_kwh,
                                  server_count=args.servers)
    result = model.run(n_samples=args.samples, seed=args.seed)
    print(format_kv_table(result.as_dict(),
                          title="Monte-Carlo uncertainty over the paper's input ranges",
                          float_format=",.3f"))
    return 0


_COMMANDS = {
    "inventory": _cmd_inventory,
    "intensity": _cmd_intensity,
    "snapshot": _cmd_snapshot,
    "scenarios": _cmd_scenarios,
    "uncertainty": _cmd_uncertainty,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


__all__ = ["main"]
