"""Command-line interface for the audit pipeline.

Installed as ``python -m repro``.  The subcommands mirror the paper's
evaluation artefacts so the whole reproduction can be driven without writing
any Python:

``assess``
    The canonical entry point: run the unified assessment pipeline from a
    JSON spec file (``--spec``) and/or inline overrides, printing the
    result as a table, JSON or CSV.
``temporal``
    Run the time-resolved assessment engine: align the facility power
    trace with the grid-intensity trace, integrate energy × intensity per
    interval, and report per-day, per-band and intensity-weighted results
    (plus carbon-aware what-ifs via ``--shift-hours``/``--defer-fraction``).
``inventory``
    Print the Table 1 hardware inventory.
``intensity``
    Print the Figure 1 synthetic GB grid-intensity summary (and optionally
    the text chart).
``snapshot``
    Run the simulated IRIS measurement campaign (Table 2) and the carbon
    model, optionally writing the regenerated tables to CSV.  Delegates to
    the same :mod:`repro.api` pipeline as ``assess``.
``scenarios``
    Print the Table 3 (active) and Table 4 (embodied) scenario grids for a
    given energy total and fleet size.
``uncertainty``
    Run the vectorized uncertainty engine: a seeded ensemble over the
    spec's distribution-aware fields (``--spec``/``--scale``), with
    quantile tables, sensitivity ranking (``--sensitivity``) and
    time-resolved emission bands (``--temporal``).  Without a spec it
    runs the paper's closed-form input envelope, as it always did.
``portfolio``
    Run a federated multi-site portfolio from a JSON
    :class:`~repro.portfolio.spec.PortfolioSpec` (``--spec``): per-site
    and rolled-up totals over one shared substrate cache, plus the
    marginal-placement ranking (``--rank-placement``, snapshot or
    ``--carbon-aware`` intensities).
``runs``
    Query the run catalog (see :mod:`repro.catalog`): ``list``, ``find``,
    ``show``, ``diff`` (CI's drift tripwire — exits 1 beyond tolerance)
    and ``gc``.  The catalog itself is populated by passing ``--catalog
    PATH`` (optionally with repeatable ``--tag``) to ``assess``,
    ``temporal``, ``uncertainty`` or ``portfolio``; a repeated run of a
    catalogued spec is then *served* from the catalog without simulating.

Scenario arguments are validated at parse time (``--scale`` in (0, 1],
``--pue`` >= 1.0) so mistakes produce a one-line usage error instead of a
stack trace from the model layer.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.api import (
    Assessment,
    AssessmentResult,
    AssessmentSpec,
    TemporalAssessment,
    active_scenario_rows,
    default_spec,
    embodied_scenario_rows,
)
from repro.catalog.schema import CatalogError
from repro.grid.synthetic import uk_november_2022_intensity
from repro.inventory.iris import (
    IRIS_IMPLIED_SERVER_COUNT,
    PAPER_TABLE2_TOTAL_KWH,
    iris_inventory_table,
)
from repro.io.csvio import write_rows_csv
from repro.io.jsonio import json_default as _json_default
from repro.reporting.figures import ascii_line_chart
from repro.reporting.tables import format_kv_table, format_table
from repro.reporting.temporal import (
    carbon_rate_chart,
    daily_emission_rows,
    intensity_band_rows,
)


# --------------------------------------------------------------------------
# parse-time validators
# --------------------------------------------------------------------------

def _float_argument(predicate, message: str):
    """An argparse ``type=`` validator: float that must satisfy ``predicate``."""

    def _parse(text: str) -> float:
        try:
            value = float(text)
        except ValueError:
            raise argparse.ArgumentTypeError(f"invalid float value: {text!r}") from None
        if not predicate(value):
            raise argparse.ArgumentTypeError(f"{message}, got {value}")
        return value

    return _parse


_scale_argument = _float_argument(lambda v: 0.0 < v <= 1.0, "must be in (0, 1]")
_pue_argument = _float_argument(lambda v: v >= 1.0, "must be at least 1.0")
_positive_argument = _float_argument(lambda v: v > 0, "must be positive")
_fraction_argument = _float_argument(lambda v: 0.0 <= v < 1.0, "must be in [0, 1)")


def _add_catalog_arguments(parser: argparse.ArgumentParser) -> None:
    """The run-catalog opt-in shared by the run-producing subcommands."""
    parser.add_argument("--catalog", type=Path, default=None,
                        help="record this run into the run catalog at this "
                             "path (created if missing); a repeat of a "
                             "catalogued spec is served without simulating")
    parser.add_argument("--tag", action="append", default=None, metavar="TAG",
                        help="tag the catalogued run (repeatable; "
                             "requires --catalog)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Total environmental impact accounting for computing infrastructures",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    assess = subparsers.add_parser(
        "assess", help="run the unified assessment pipeline (the canonical entry point)")
    assess.add_argument("--spec", type=Path, default=None,
                        help="JSON AssessmentSpec file to start from")
    assess.add_argument("--scale", type=_scale_argument, default=None,
                        help="node-count scale factor in (0, 1]")
    assess.add_argument("--intensity", type=float, default=None,
                        help="grid carbon intensity (gCO2e/kWh) for the model")
    assess.add_argument("--grid", type=str, default=None,
                        help="registered grid provider to derive the intensity from")
    assess.add_argument("--pue", type=_pue_argument, default=None,
                        help="PUE for the facility overhead (>= 1.0)")
    assess.add_argument("--lifetime", type=_positive_argument, default=None,
                        help="amortisation lifetime in years")
    assess.add_argument("--per-server-kg", type=_positive_argument, default=None,
                        help="uniform per-server embodied carbon override (kgCO2e)")
    assess.add_argument("--amortization", type=str, default=None,
                        help="registered amortisation policy name")
    assess.add_argument("--format", choices=("table", "json", "csv"), default="table",
                        help="output format (default: table)")
    assess.add_argument("--output", type=Path, default=None,
                        help="write the json/csv output to this file instead of stdout")
    assess.add_argument("--output-dir", type=Path, default=None,
                        help="directory to write the regenerated tables as CSV")
    assess.add_argument("--substrate-cache-dir", type=Path, default=None,
                        help="persist simulated snapshots here so full-scale "
                             "runs are paid once per machine")
    assess.add_argument("--jobs", type=int, default=None,
                        help="simulate this many sites concurrently "
                             "(default: 1; 0 = one thread per site)")
    assess.add_argument("--engine", choices=("columnar", "oracle", "sharded"),
                        default=None,
                        help="simulation substrate engine (default: columnar; "
                             "'sharded' streams node-axis shards from disk so "
                             "fleets whose dense matrix exceeds RAM still run)")
    assess.add_argument("--shard-nodes", type=int, default=None, metavar="N",
                        help="nodes per shard file for --engine sharded "
                             "(default: 4096)")
    assess.add_argument("--dtype", choices=("float64", "float32"), default=None,
                        help="on-disk shard dtype for --engine sharded "
                             "(float32 halves the footprint; reductions still "
                             "accumulate in float64)")
    assess.add_argument("--scheduler-engine", choices=("indexed", "reference"),
                        default=None,
                        help="placement-loop implementation (default: indexed; "
                             "'reference' runs the seed event loop — "
                             "bit-identical placements, wall-clock only)")
    assess.add_argument("--timings", action="store_true",
                        help="report per-site simulation phase timings "
                             "(workload/schedule/trace/power wall seconds; "
                             "table or json format only)")
    assess.add_argument("--sweep", action="append", default=None,
                        metavar="AXIS=V1,V2,...",
                        help="sweep an axis over comma-separated values "
                             "(repeatable; axes: intensity, pue, lifetime, "
                             "per_server_kgco2, scale, amortization, grid, "
                             "embodied_estimator); runs the whole cartesian "
                             "grid through the batch runner and emits one "
                             "summary row per scenario")
    assess.add_argument("--batch-engine", choices=("columnar", "reference"),
                        default=None,
                        help="sweep execution engine (default: columnar — one "
                             "vectorized pass per physical group; 'reference' "
                             "runs the per-spec oracle loop, bit-identical; "
                             "requires --sweep)")
    _add_catalog_arguments(assess)

    temporal = subparsers.add_parser(
        "temporal", help="run the time-resolved assessment engine")
    temporal.add_argument("--spec", type=Path, default=None,
                          help="JSON AssessmentSpec file to start from")
    temporal.add_argument("--scale", type=_scale_argument, default=None,
                          help="node-count scale factor in (0, 1]")
    temporal.add_argument("--grid", type=str, default=None,
                          help="registered grid provider supplying the intensity trace")
    temporal.add_argument("--intensity", type=float, default=None,
                          help="fixed grid carbon intensity (gCO2e/kWh) instead of a trace")
    temporal.add_argument("--pue", type=_pue_argument, default=None,
                          help="PUE for the facility overhead (>= 1.0)")
    temporal.add_argument("--trace-source", type=str, default=None,
                          help="registered power-trace provider (default: measured)")
    temporal.add_argument("--resolution", type=_positive_argument, default=None,
                          help="temporal resolution in seconds (default: automatic)")
    temporal.add_argument("--alignment", choices=("strict", "resample", "intersect"),
                          default=None, help="trace alignment policy")
    temporal.add_argument("--shift-hours", type=float, default=None,
                          help="circularly shift the workload by this many hours")
    temporal.add_argument("--defer-fraction", type=_fraction_argument, default=None,
                          help="fraction of dirty-interval energy deferred, in [0, 1)")
    temporal.add_argument("--format", choices=("table", "json", "csv"), default="table",
                          help="output format (default: table)")
    temporal.add_argument("--output", type=Path, default=None,
                          help="write the json/csv output to this file instead of stdout")
    temporal.add_argument("--chart", action="store_true",
                          help="also print the ASCII emission-rate chart")
    temporal.add_argument("--substrate-cache-dir", type=Path, default=None,
                          help="persist simulated snapshots here so full-scale "
                               "runs are paid once per machine")
    temporal.add_argument("--jobs", type=int, default=None,
                          help="simulate this many sites concurrently "
                               "(default: 1; 0 = one thread per site)")
    _add_catalog_arguments(temporal)

    subparsers.add_parser("inventory", help="print the Table 1 hardware inventory")

    intensity = subparsers.add_parser(
        "intensity", help="summarise the synthetic Figure 1 grid-intensity month")
    intensity.add_argument("--days", type=float, default=30.0,
                           help="length of the generated window in days")
    intensity.add_argument("--chart", action="store_true",
                           help="also print the ASCII chart")

    snapshot = subparsers.add_parser(
        "snapshot", help="run the simulated IRIS snapshot (Table 2 + carbon model)")
    snapshot.add_argument("--scale", type=float, default=1.0,
                          help="node-count scale factor in (0, 1]")
    snapshot.add_argument("--intensity", type=float, default=175.0,
                          help="grid carbon intensity (gCO2e/kWh) for the model")
    snapshot.add_argument("--pue", type=float, default=1.3,
                          help="PUE for the facility overhead")
    snapshot.add_argument("--output-dir", type=Path, default=None,
                          help="directory to write the regenerated tables as CSV")

    scenarios = subparsers.add_parser(
        "scenarios", help="print the Table 3 and Table 4 scenario grids")
    scenarios.add_argument("--energy-kwh", type=float, default=PAPER_TABLE2_TOTAL_KWH,
                           help="measured IT energy for the period (kWh)")
    scenarios.add_argument("--servers", type=int, default=IRIS_IMPLIED_SERVER_COUNT,
                           help="number of servers carrying embodied carbon")
    scenarios.add_argument("--period-hours", type=float, default=24.0,
                           help="evaluation period length in hours")

    uncertainty = subparsers.add_parser(
        "uncertainty",
        help="seeded ensemble over distribution-aware spec fields")
    uncertainty.add_argument("--spec", type=Path, default=None,
                             help="JSON spec; samplable numeric fields may "
                                  "hold distribution objects "
                                  '(e.g. {"dist": "triangular", ...})')
    uncertainty.add_argument("--scale", type=_scale_argument, default=None,
                             help="node-count scale factor in (0, 1]; with "
                                  "no --spec, runs the paper's default "
                                  "envelope on the simulated snapshot")
    uncertainty.add_argument("--samples", type=int, default=20000,
                             help="ensemble size (default: 20000)")
    uncertainty.add_argument("--seed", type=int, default=0,
                             help="ensemble seed (runs are bit-reproducible)")
    uncertainty.add_argument("--method", choices=("auto", "vectorized", "oracle"),
                             default="auto",
                             help="force the columnar pass or the per-sample "
                                  "oracle loop (default: auto)")
    uncertainty.add_argument("--sensitivity", action="store_true",
                             help="also print the one-at-a-time sensitivity "
                                  "ranking of the sampled fields")
    uncertainty.add_argument("--histogram", action="store_true",
                             help="also print the ASCII total-kg histogram "
                                  "(table format only)")
    uncertainty.add_argument("--temporal", action="store_true",
                             help="time-resolved ensemble: emission bands "
                                  "over the window instead of period totals")
    uncertainty.add_argument("--format", choices=("table", "json", "csv"),
                             default="table",
                             help="output format (default: table)")
    uncertainty.add_argument("--output", type=Path, default=None,
                             help="write the json/csv output to this file "
                                  "instead of stdout")
    uncertainty.add_argument("--substrate-cache-dir", type=Path, default=None,
                             help="persist simulated snapshots here so "
                                  "full-scale runs are paid once per machine")
    uncertainty.add_argument("--jobs", type=int, default=None,
                             help="simulate this many sites concurrently "
                                  "(default: 1; 0 = one thread per site)")
    uncertainty.add_argument("--energy-kwh", type=float, default=None,
                             help="paper mode: closed-form ensemble for this "
                                  "measured energy (no simulation)")
    uncertainty.add_argument("--servers", type=int, default=None,
                             help="paper mode: server count for the "
                                  "closed-form embodied term")
    _add_catalog_arguments(uncertainty)

    portfolio = subparsers.add_parser(
        "portfolio",
        help="run a federated multi-site portfolio assessment")
    portfolio.add_argument("--spec", type=Path, required=True,
                           help="JSON PortfolioSpec file: named members, "
                                "each a full assessment spec plus a region "
                                "binding and a load share")
    portfolio.add_argument("--rank-placement", action="store_true",
                           help="also print/emit the marginal-placement "
                                "ranking (which site takes extra load "
                                "cheapest)")
    portfolio.add_argument("--load-kwh", type=_positive_argument, default=None,
                           help="marginal load for --rank-placement in kWh "
                                "(default: 1000)")
    portfolio.add_argument("--carbon-aware", action="store_true",
                           help="rank placement at each site's clean-hour "
                                "intensity instead of the snapshot average")
    portfolio.add_argument("--format", choices=("table", "json", "csv"),
                           default="table",
                           help="output format (default: table)")
    portfolio.add_argument("--output", type=Path, default=None,
                           help="write the json/csv output to this file "
                                "instead of stdout")
    portfolio.add_argument("--substrate-cache-dir", type=Path, default=None,
                           help="persist simulated snapshots here so "
                                "full-scale runs are paid once per machine")
    portfolio.add_argument("--jobs", type=int, default=None,
                           help="simulate this many sites concurrently "
                                "(default: 1; 0 = one thread per site)")
    _add_catalog_arguments(portfolio)

    serve = subparsers.add_parser(
        "serve",
        help="run the long-lived assessment server (HTTP + JSON)")
    serve.add_argument("--host", type=str, default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8035,
                       help="bind port; 0 picks an ephemeral port "
                            "(default: 8035)")
    serve.add_argument("--workers", type=int, default=None,
                       help="worker threads executing requests concurrently "
                            "(default: 4)")
    serve.add_argument("--queue-limit", type=int, default=None,
                       help="admitted requests allowed to wait beyond the "
                            "workers before new arrivals get 429 "
                            "(default: 16)")
    serve.add_argument("--request-timeout", type=_positive_argument,
                       default=None, metavar="SECONDS",
                       help="per-request wall-clock budget before the "
                            "server answers 504 (default: 300)")
    serve.add_argument("--max-substrates", type=int, default=None,
                       help="bound on cached substrates held in memory "
                            "(default: the shared-cache bound)")
    serve.add_argument("--substrate-cache-dir", type=Path, default=None,
                       help="persist simulated snapshots here so restarts "
                            "do not re-simulate")
    serve.add_argument("--jobs", type=int, default=None,
                       help="sites simulated concurrently inside one "
                            "request (default: 1; 0 = one thread per site)")
    serve.add_argument("--plugin", action="append", default=None,
                       metavar="MODULE",
                       help="import this module at startup to register "
                            "components (repeatable; POST /reload "
                            "re-imports them without a restart)")
    _add_catalog_arguments(serve)

    from repro.catalog.cli import add_runs_parser

    add_runs_parser(subparsers)

    return parser


# --------------------------------------------------------------------------
# shared assessment helpers
# --------------------------------------------------------------------------

def _run_assessment(spec: AssessmentSpec, substrates=None,
                    catalog=None) -> AssessmentResult:
    return Assessment.from_spec(spec, substrates=substrates,
                                catalog=catalog).run()


def _build_catalog_recorder(args: argparse.Namespace, *, serve: bool = True):
    """A CatalogRecorder from --catalog/--tag, or None when not requested.

    ``serve=False`` still records the run but never serves from the
    catalog — used when the subcommand's output needs live result objects
    (CSV/table renderers, the Table 3/4 CSV export) that a served payload
    cannot reconstruct.
    """
    catalog = getattr(args, "catalog", None)
    tags = getattr(args, "tag", None) or []
    if catalog is None:
        if tags:
            raise _UsageError("--tag requires --catalog")
        return None
    from repro.catalog import CatalogRecorder

    return CatalogRecorder(catalog, tags=tuple(tags), serve=serve)


def _build_substrates(args: argparse.Namespace):
    """A SubstrateCache from --substrate-cache-dir/--jobs, or None for shared.

    ``--jobs 0`` means "one thread per site" (auto); raises
    :class:`_UsageError` on a negative count.
    """
    cache_dir = getattr(args, "substrate_cache_dir", None)
    jobs = getattr(args, "jobs", None)
    if cache_dir is None and jobs is None:
        return None
    if jobs is not None and jobs < 0:
        raise _UsageError("--jobs must be non-negative (0 = one thread per site)")
    from repro.api import SubstrateCache

    return SubstrateCache(
        persist_dir=cache_dir,
        jobs=None if jobs == 0 else (jobs if jobs is not None else 1),
    )


def _assessment_tables_text(result: AssessmentResult) -> str:
    """The human-readable assessment output (shared by assess and snapshot)."""
    table2 = format_table(
        result.table2_rows(),
        columns=["site", "facility", "pdu", "ipmi", "turbostat", "nodes"],
        title="Table 2 - Active energy measured for the snapshot period (kWh)",
    )
    model = format_kv_table({
        "carbon intensity gCO2/kWh": result.spec.carbon_intensity_g_per_kwh,
        "pue": result.spec.pue,
        "active kgCO2e": result.active_kg,
        "embodied kgCO2e": result.embodied_kg,
        "total kgCO2e": result.total_kg,
        "embodied fraction": result.embodied_fraction,
    }, title="Carbon model (equation 1)", float_format=",.2f")
    return (f"{table2}\n"
            f"\nTotal best-estimate energy: {result.energy_kwh:,.0f} kWh "
            f"(paper: {PAPER_TABLE2_TOTAL_KWH:,.0f} kWh at full scale)\n"
            f"\n{model}")


def _write_assessment_tables(result: AssessmentResult, output_dir: Path) -> None:
    write_rows_csv(output_dir / "table2_energy.csv", result.table2_rows())
    write_rows_csv(output_dir / "table3_active_carbon.csv", result.table3_rows())
    write_rows_csv(output_dir / "table4_embodied.csv", result.table4_rows())
    print(f"\nWrote tables to {output_dir}")


def _emit(text: str, output: Optional[Path]) -> None:
    if output is None:
        print(text)
    else:
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(text + "\n", encoding="utf-8")
        print(f"Wrote {output}")


def _emit_rows_csv(rows, output: Optional[Path]) -> None:
    """Write summary rows as CSV to ``output``, or to stdout."""
    if output is not None:
        write_rows_csv(output, rows)
        print(f"Wrote {output}")
    else:
        writer = csv.writer(sys.stdout)
        writer.writerow(list(rows[0]))
        for row in rows:
            writer.writerow(list(row.values()))


# --------------------------------------------------------------------------
# subcommand implementations
# --------------------------------------------------------------------------

def _load_spec(spec_path: Optional[Path]) -> AssessmentSpec:
    """Load a spec file, or the default spec; raises on unreadable/invalid."""
    return AssessmentSpec.from_json(spec_path) if spec_path else default_spec()


class _UsageError(Exception):
    """A user mistake reported as a one-line stderr message + exit code 2."""


def _scenario_overrides(args: argparse.Namespace) -> dict:
    """The scale/grid/intensity/pue overrides shared by assess and temporal."""
    if args.grid is not None and args.intensity is not None:
        raise _UsageError(
            "--grid and --intensity conflict: a fixed intensity "
            "would override the provider; pass one or the other")
    overrides = {}
    if args.scale is not None:
        overrides["node_scale"] = args.scale
    if args.grid is not None:
        overrides["grid"] = args.grid
        overrides["carbon_intensity_g_per_kwh"] = None
    if args.intensity is not None:
        if args.intensity < 0:
            raise _UsageError("--intensity must be non-negative")
        overrides["carbon_intensity_g_per_kwh"] = args.intensity
    if args.pue is not None:
        overrides["pue"] = args.pue
    return overrides


def _engine_overrides(args: argparse.Namespace, spec: AssessmentSpec) -> dict:
    """The --engine/--shard-nodes/--dtype overrides of the assess command.

    The shard knobs only mean anything on the sharded engine, so passing
    them while the *effective* engine (flag, else spec) is dense is a
    usage error, not a silent no-op.
    """
    overrides = {}
    if args.engine is not None:
        overrides["engine"] = args.engine
    engine = overrides.get("engine", spec.engine)
    if args.shard_nodes is not None:
        if engine != "sharded":
            raise _UsageError("--shard-nodes only applies to --engine sharded")
        if args.shard_nodes < 1:
            raise _UsageError("--shard-nodes must be at least 1")
        overrides["shard_nodes"] = args.shard_nodes
    if args.dtype is not None:
        if engine != "sharded":
            raise _UsageError("--dtype only applies to --engine sharded")
        overrides["shard_dtype"] = args.dtype
    if args.scheduler_engine is not None:
        overrides["scheduler_engine"] = args.scheduler_engine
    return overrides


def _parse_sweep_axes(entries: Sequence[str]) -> dict:
    """Parse repeatable ``--sweep AXIS=V1,V2,...`` flags into sweep axes.

    Values parse as floats when they can (intensity, pue, ...) and stay
    strings otherwise (grid / amortization / estimator names); axis-name
    validation is the batch runner's job.
    """
    axes: dict = {}
    for entry in entries:
        name, sep, values_text = entry.partition("=")
        name = name.strip()
        if not sep or not name or not values_text.strip():
            raise _UsageError(
                f"--sweep expects AXIS=V1,V2,..., got {entry!r}")
        if name in axes:
            raise _UsageError(f"--sweep axis {name!r} given more than once")
        values = []
        for text in values_text.split(","):
            text = text.strip()
            if not text:
                raise _UsageError(
                    f"--sweep axis {name!r} has an empty value in {entry!r}")
            try:
                values.append(float(text))
            except ValueError:
                values.append(text)
        axes[name] = values
    return axes


def _run_sweep(args: argparse.Namespace, spec: AssessmentSpec,
               substrates, recorder, axes: dict) -> int:
    """The ``assess --sweep`` mode: a whole grid, one summary row per point."""
    from repro.api import BatchAssessmentRunner

    runner = BatchAssessmentRunner(
        spec, substrates=substrates, catalog=recorder,
        batch_engine=args.batch_engine or "columnar")
    batch = runner.sweep(**axes)
    rows = batch.as_rows()
    if args.format == "table":
        _emit(format_table(
            rows, title=f"Sweep ({len(rows)} scenarios)",
            float_format=",.6g"), args.output)
    elif args.format == "json":
        _emit(json.dumps(rows, indent=2, default=_json_default,
                         sort_keys=True), args.output)
    else:  # csv
        _emit_rows_csv(rows, args.output)
    return 0


def _timings_table_text(timings: dict) -> str:
    """Render per-site phase timings as a table (plus a fleet total row)."""
    if not timings:
        return ("(no phase timings recorded: snapshot served from a cache "
                "written before timings existed)")
    phases = ["workload_s", "schedule_s", "trace_s", "power_s", "total_s"]
    rows = []
    for site, site_timings in timings.items():
        row = {"site": site}
        row.update({phase: site_timings.get(phase, 0.0) for phase in phases})
        rows.append(row)
    total = {"site": "TOTAL"}
    for phase in phases:
        total[phase] = sum(row[phase] for row in rows)
    rows.append(total)
    return format_table(rows, columns=["site"] + phases,
                        title="Per-site simulation wall-clock (s)",
                        float_format=",.3f")


def _cmd_assess(args: argparse.Namespace) -> int:
    try:
        if args.timings and args.format == "csv":
            raise _UsageError(
                "--timings is not available with --format csv "
                "(use table or json)")
        if args.batch_engine is not None and not args.sweep:
            raise _UsageError("--batch-engine only applies with --sweep")
        if args.sweep:
            if args.timings:
                raise _UsageError(
                    "--timings is not available with --sweep "
                    "(it reads one run's snapshot)")
            if args.output_dir is not None:
                raise _UsageError(
                    "--output-dir is not available with --sweep "
                    "(it exports one run's tables)")
        sweep_axes = _parse_sweep_axes(args.sweep) if args.sweep else None
        overrides = _scenario_overrides(args)
        substrates = _build_substrates(args)
        # The Table 3/4 CSV export needs the live snapshot, so --output-dir
        # downgrades the catalog to record-only; --timings too (a served
        # payload carries no snapshot to read timings from).
        recorder = _build_catalog_recorder(
            args, serve=args.output_dir is None and not args.timings)
    except _UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        spec = _load_spec(args.spec)
    except (OSError, ValueError, TypeError) as exc:
        print(f"error: cannot load spec: {exc}", file=sys.stderr)
        return 2
    if args.lifetime is not None:
        overrides["lifetime_years"] = args.lifetime
    if args.per_server_kg is not None:
        overrides["per_server_kgco2"] = args.per_server_kg
    if args.amortization is not None:
        overrides["amortization"] = args.amortization
    try:
        overrides.update(_engine_overrides(args, spec))
    except _UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        spec = spec.replace(**overrides) if overrides else spec
        if sweep_axes is not None:
            return _run_sweep(args, spec, substrates, recorder, sweep_axes)
        result = _run_assessment(spec, substrates, recorder)
    except (KeyError, ValueError, CatalogError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "table":
        text = _assessment_tables_text(result)
        if args.timings:
            text += "\n\n" + _timings_table_text(result.snapshot.timings)
        _emit(text, args.output)
    elif args.format == "json":
        payload = result.as_dict()
        if args.timings:
            # Diagnostic wall-clock only: attached to the printed payload,
            # never to as_dict() itself (which feeds digests and goldens).
            payload["timings"] = {
                site: dict(phases)
                for site, phases in result.snapshot.timings.items()
            }
        _emit(json.dumps(payload, indent=2, default=_json_default,
                         sort_keys=True), args.output)
    else:  # csv
        _emit_rows_csv([result.summary()], args.output)
    if args.output_dir is not None:
        _write_assessment_tables(result, args.output_dir)
    return 0


def _cmd_temporal(args: argparse.Namespace) -> int:
    try:
        overrides = _scenario_overrides(args)
        substrates = _build_substrates(args)
        # Table/CSV/chart renderers need the live profile object; only the
        # JSON view is exactly the recorded payload, so only it serves.
        recorder = _build_catalog_recorder(
            args, serve=args.format == "json" and not args.chart)
    except _UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        spec = _load_spec(args.spec)
    except (OSError, ValueError, TypeError) as exc:
        print(f"error: cannot load spec: {exc}", file=sys.stderr)
        return 2
    if args.trace_source is not None:
        overrides["trace_source"] = args.trace_source
    if args.resolution is not None:
        overrides["temporal_resolution_s"] = args.resolution
    if args.alignment is not None:
        overrides["alignment"] = args.alignment
    if args.shift_hours is not None:
        overrides["shift_hours"] = args.shift_hours
    if args.defer_fraction is not None:
        overrides["defer_fraction"] = args.defer_fraction
    try:
        spec = spec.replace(**overrides) if overrides else spec
        result = TemporalAssessment.from_spec(
            spec, substrates=substrates, catalog=recorder).run()
    except (KeyError, ValueError, TypeError, CatalogError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "table":
        parts = []
        if args.chart:
            parts.append(carbon_rate_chart(result.profile) + "\n")
        summary = result.summary()
        parts.append(format_kv_table(
            {key: summary[key] for key in (
                "grid", "trace_source", "resolution_s", "intervals",
                "shift_hours", "defer_fraction", "pue", "energy_kwh",
                "mean_intensity_g_per_kwh", "experienced_intensity_g_per_kwh",
                "active_kg", "window_average_active_kg",
                "temporal_correction_kg", "savings_kg", "embodied_kg",
                "total_kg",
            )},
            title="Time-resolved assessment", float_format=",.3f"))
        daily = daily_emission_rows(result.profile)
        parts.append("\n" + format_table(
            daily,
            columns=["day", "hours", "energy_kwh", "carbon_kg",
                     "mean_intensity_g_per_kwh",
                     "experienced_intensity_g_per_kwh"],
            title="Per-day emissions", float_format=",.2f"))
        bands = intensity_band_rows(result.profile)
        parts.append("\n" + format_table(
            bands,
            columns=["band", "share_of_time", "energy_kwh", "carbon_kg",
                     "share_of_carbon"],
            title="Carbon by grid-intensity band", float_format=",.3f"))
        _emit("\n".join(parts), args.output)
    elif args.format == "json":
        _emit(json.dumps(result.as_dict(), indent=2, default=_json_default,
                         sort_keys=True), args.output)
    else:  # csv
        _emit_rows_csv([result.summary()], args.output)
    return 0


def _cmd_inventory(_args: argparse.Namespace) -> int:
    print(format_table(iris_inventory_table(),
                       title="Table 1 - IRIS hardware included in the project",
                       float_format=",.0f"))
    return 0


def _cmd_intensity(args: argparse.Namespace) -> int:
    if args.days <= 0:
        print("error: --days must be positive", file=sys.stderr)
        return 2
    series = uk_november_2022_intensity(days=args.days)
    if args.chart:
        print(ascii_line_chart(series.series.values, width=72, height=14,
                               title="GB grid carbon intensity (synthetic)",
                               y_label="gCO2e/kWh"))
        print()
    references = series.reference_values()
    print(format_kv_table({
        "window days": args.days,
        "samples": len(series.series),
        "minimum gCO2/kWh": series.min_intensity().g_per_kwh,
        "low reference (5th pct)": references["low"].g_per_kwh,
        "medium reference (mean)": references["medium"].g_per_kwh,
        "high reference (95th pct)": references["high"].g_per_kwh,
        "maximum gCO2/kWh": series.max_intensity().g_per_kwh,
    }, title="Figure 1 summary"))
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    # Validated here (not via argparse types) so programmatic callers get a
    # return code rather than SystemExit, as this command always did.
    if not 0.0 < args.scale <= 1.0:
        print("error: argument --scale: must be in (0, 1]", file=sys.stderr)
        return 2
    if args.pue < 1.0:
        print("error: argument --pue: must be at least 1.0", file=sys.stderr)
        return 2
    if args.intensity < 0:
        print("error: argument --intensity: must be non-negative", file=sys.stderr)
        return 2
    result = _run_assessment(default_spec(
        node_scale=args.scale,
        carbon_intensity_g_per_kwh=args.intensity,
        pue=args.pue,
    ))
    print(_assessment_tables_text(result))
    if args.output_dir is not None:
        _write_assessment_tables(result, args.output_dir)
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    if args.energy_kwh < 0 or args.servers <= 0 or args.period_hours <= 0:
        print("error: energy must be >= 0, servers and period positive", file=sys.stderr)
        return 2
    print(format_table(
        active_scenario_rows(args.energy_kwh, args.period_hours),
        columns=["intensity_level", "intensity_g_per_kwh", "pue", "carbon_kg"],
        title=f"Table 3 - Active carbon for {args.energy_kwh:,.0f} kWh (kgCO2e)",
    ))
    print()
    print(format_table(
        embodied_scenario_rows(args.servers, args.period_hours),
        title=f"Table 4 - Embodied carbon for {args.servers} servers (kgCO2e)",
        float_format=",.2f",
    ))
    return 0


def _load_uncertain_spec(args: argparse.Namespace):
    """The UncertainSpec for the ensemble modes.

    A spec file whose fields carry distribution objects is taken as is; a
    plain spec file (or bare ``--scale``) gets a default envelope attached
    — the paper's input envelope, or a trace scale/shift envelope for
    ``--temporal`` — so ``repro uncertainty --scale 0.05`` works out of
    the box.  The bare ``--temporal`` default derives its intensity from
    the spec's grid *trace* (not the fixed reference intensity), so the
    timing-error axis actually moves the answer; a plain spec file that
    pins a constant intensity only gets the scale axis, since shifting a
    constant trace is a no-op.
    """
    from repro.api.spec import AssessmentSpec
    from repro.io.jsonio import read_json
    from repro.uncertainty import (
        Normal, UncertainSpec, paper_default_distributions)
    from repro.uncertainty.distributions import DIST_KEY

    def default_envelope(base: AssessmentSpec):
        if args.temporal:
            # Is the intensity feed biased, and is its timing off?
            envelope = {
                "intensity_scale": Normal(1.0, 0.1, low=0.5, high=1.5)}
            if base.carbon_intensity_g_per_kwh is None:
                envelope["intensity_shift_hours"] = Normal(
                    0.0, 1.0, low=-6.0, high=6.0)
            return envelope
        return paper_default_distributions()

    if args.spec is not None:
        data = read_json(args.spec)
        if not isinstance(data, dict):
            raise ValueError(f"{args.spec}: a spec must be a JSON object")
        has_distributions = any(
            isinstance(value, dict) and DIST_KEY in value
            for value in data.values())
        if has_distributions:
            spec = UncertainSpec.from_dict(data)
        else:
            base = AssessmentSpec.from_dict(data)
            spec = UncertainSpec(base=base,
                                 distributions=default_envelope(base))
    else:
        base = (default_spec(carbon_intensity_g_per_kwh=None)
                if args.temporal else default_spec())
        spec = UncertainSpec(base=base,
                             distributions=default_envelope(base))
    if args.scale is not None:
        spec = spec.replace(node_scale=args.scale)
    return spec


def _cmd_uncertainty_paper(args: argparse.Namespace) -> int:
    """The closed-form paper mode: no simulation, equation 1 arithmetic."""
    from repro.core.uncertainty import (
        UncertainInput, closed_form_draws, summarise_closed_form)

    energy_kwh = (args.energy_kwh if args.energy_kwh is not None
                  else PAPER_TABLE2_TOTAL_KWH)
    servers = args.servers if args.servers is not None else IRIS_IMPLIED_SERVER_COUNT
    if energy_kwh < 0 or servers <= 0:
        print("error: --energy-kwh must be >= 0 and --servers positive",
              file=sys.stderr)
        return 2
    draws = closed_form_draws(UncertainInput(), energy_kwh, servers,
                              period_days=1.0, n_samples=args.samples,
                              seed=args.seed)
    result = summarise_closed_form(draws)
    if args.format == "json":
        _emit(json.dumps(result.as_dict(), indent=2, sort_keys=True),
              args.output)
    elif args.format == "csv":
        _emit_rows_csv([result.as_dict()], args.output)
    else:
        _emit(format_kv_table(
            result.as_dict(),
            title="Monte-Carlo uncertainty over the paper's input ranges",
            float_format=",.3f"), args.output)
    return 0


def _cmd_uncertainty(args: argparse.Namespace) -> int:
    if args.samples <= 0:
        print("error: --samples must be positive", file=sys.stderr)
        return 2
    if args.temporal:
        # Static-ensemble-only flags must not be silently dropped.
        static_only = [
            label for label, given in (
                ("--sensitivity", args.sensitivity),
                ("--histogram", args.histogram),
                ("--method", args.method != "auto"),
            ) if given
        ]
        if static_only:
            print(f"error: {', '.join(static_only)} only valid for the "
                  "static ensemble, not --temporal", file=sys.stderr)
            return 2
    # Paper mode: explicit closed-form inputs, or no spec/scale at all
    # (the subcommand's historical default behaviour).
    spec_mode = args.spec is not None or args.scale is not None or args.temporal
    if args.energy_kwh is not None or args.servers is not None:
        if spec_mode:
            print("error: --energy-kwh/--servers (closed-form paper mode) "
                  "conflict with --spec/--scale/--temporal (simulated "
                  "ensemble); pass one or the other", file=sys.stderr)
            return 2
    if not spec_mode:
        # Ensemble-only flags must not be silently dropped in paper mode.
        ensemble_only = [
            label for label, given in (
                ("--sensitivity", args.sensitivity),
                ("--histogram", args.histogram),
                ("--method", args.method != "auto"),
                ("--substrate-cache-dir", args.substrate_cache_dir is not None),
                ("--jobs", args.jobs is not None),
                ("--catalog", args.catalog is not None),
                ("--tag", bool(args.tag)),
            ) if given
        ]
        if ensemble_only:
            print(f"error: {', '.join(ensemble_only)} only valid for the "
                  "simulated ensemble; pass --spec or --scale",
                  file=sys.stderr)
            return 2
        return _cmd_uncertainty_paper(args)

    from repro.reporting.uncertainty import (
        ensemble_histogram,
        ensemble_quantile_table,
        ensemble_summary_table,
        sensitivity_table,
        temporal_band_table,
    )
    from repro.uncertainty import EnsembleRunner, TemporalEnsembleRunner

    try:
        substrates = _build_substrates(args)
        # Quantile/band table and CSV renderers need the live result
        # (sample matrices); only the JSON view serves from the catalog.
        recorder = _build_catalog_recorder(args, serve=args.format == "json")
    except _UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        spec = _load_uncertain_spec(args)
    except (OSError, KeyError, ValueError, TypeError) as exc:
        print(f"error: cannot load spec: {exc}", file=sys.stderr)
        return 2

    try:
        if args.temporal:
            runner = TemporalEnsembleRunner(spec, substrates=substrates,
                                            catalog=recorder)
            result = runner.run(n_samples=args.samples, seed=args.seed)
        else:
            runner = EnsembleRunner(spec, substrates=substrates,
                                    catalog=recorder)
            result = runner.run(n_samples=args.samples, seed=args.seed,
                                method=args.method)
    except (KeyError, ValueError, TypeError, CatalogError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    sensitivity_rows = None
    if args.sensitivity:
        sensitivity_rows = runner.sensitivity(n_samples=args.samples,
                                              seed=args.seed)

    if args.format == "json":
        payload = result.as_dict()
        if sensitivity_rows is not None:
            payload["sensitivity"] = sensitivity_rows
        _emit(json.dumps(payload, indent=2, default=_json_default,
                         sort_keys=True), args.output)
    elif args.format == "csv":
        rows = (result.band_rows() if args.temporal
                else result.quantile_rows())
        _emit_rows_csv(rows, args.output)
    else:
        parts = []
        if args.temporal:
            parts.append(format_kv_table(
                result.summary(),
                title=f"Temporal ensemble over {', '.join(result.samples.fields)}",
                float_format=",.3f"))
            parts.append("\n" + temporal_band_table(result))
        else:
            parts.append(ensemble_summary_table(result))
            parts.append("\n" + ensemble_quantile_table(result))
            if args.histogram:
                parts.append("\n" + ensemble_histogram(result))
        if sensitivity_rows is not None:
            parts.append("\n" + sensitivity_table(sensitivity_rows))
        _emit("\n".join(parts), args.output)
    return 0


def _cmd_portfolio(args: argparse.Namespace) -> int:
    from repro.portfolio import DEFAULT_PLACEMENT_LOAD_KWH, PortfolioRunner, PortfolioSpec
    from repro.reporting.portfolio import (
        placement_table,
        portfolio_site_table,
        portfolio_summary_table,
    )

    placement_flags = [
        label for label, given in (
            ("--load-kwh", args.load_kwh is not None),
            ("--carbon-aware", args.carbon_aware),
        ) if given
    ]
    if placement_flags and not args.rank_placement:
        print(f"error: {', '.join(placement_flags)} only valid with "
              "--rank-placement", file=sys.stderr)
        return 2
    try:
        substrates = _build_substrates(args)
        # The recorded payload prices placement at the default marginal
        # load, and the table renderers need live member results — so only
        # the default-load JSON view serves from the catalog.
        recorder = _build_catalog_recorder(
            args, serve=args.format == "json" and args.load_kwh is None)
    except _UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        spec = PortfolioSpec.from_json(args.spec)
    except (OSError, KeyError, ValueError, TypeError) as exc:
        print(f"error: cannot load spec: {exc}", file=sys.stderr)
        return 2
    try:
        result = PortfolioRunner(spec, substrates=substrates,
                                 catalog=recorder).run()
    except (KeyError, ValueError, TypeError, CatalogError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    load_kwh = (args.load_kwh if args.load_kwh is not None
                else DEFAULT_PLACEMENT_LOAD_KWH)
    if args.format == "table":
        parts = [portfolio_site_table(result), "\n" + portfolio_summary_table(result)]
        if args.rank_placement:
            parts.append("\n" + placement_table(
                result, load_kwh, carbon_aware=args.carbon_aware))
        _emit("\n".join(parts), args.output)
    elif args.format == "json":
        document = (result.as_dict()
                    if getattr(result, "served_from_catalog", False)
                    else result.as_dict(load_kwh))
        _emit(json.dumps(document, indent=2,
                         default=_json_default, sort_keys=True), args.output)
    else:  # csv
        rows = (result.placement_rows(load_kwh, carbon_aware=args.carbon_aware)
                if args.rank_placement else result.site_rows())
        _emit_rows_csv(rows, args.output)
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    from repro.catalog.cli import cmd_runs

    return cmd_runs(args)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.reporting.serve import serve_banner, shutdown_report
    from repro.serve import ServeConfig
    from repro.serve.http import serve_forever

    overrides = {
        "workers": args.workers,
        "queue_limit": args.queue_limit,
        "request_timeout_s": args.request_timeout,
        "max_substrates": args.max_substrates,
    }
    try:
        if args.tag and args.catalog is None:
            raise _UsageError("--tag requires --catalog")
        if args.jobs is not None and args.jobs < 0:
            raise _UsageError(
                "--jobs must be non-negative (0 = one thread per site)")
        try:
            config = ServeConfig(
                host=args.host,
                port=args.port,
                substrate_cache_dir=args.substrate_cache_dir,
                jobs=None if args.jobs == 0 else (
                    args.jobs if args.jobs is not None else 1),
                catalog=args.catalog,
                tags=tuple(args.tag or ()),
                plugins=tuple(args.plugin or ()),
                **{key: value for key, value in overrides.items()
                   if value is not None},
            )
        except ValueError as exc:
            raise _UsageError(str(exc)) from exc
    except _UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def banner(server) -> None:
        print(serve_banner(server.address, config), flush=True)

    outcome = serve_forever(config, banner=banner)
    print(f"\n{shutdown_report(outcome)}")
    return 0 if outcome["clean_drain"] else 1


_COMMANDS = {
    "assess": _cmd_assess,
    "temporal": _cmd_temporal,
    "inventory": _cmd_inventory,
    "intensity": _cmd_intensity,
    "snapshot": _cmd_snapshot,
    "scenarios": _cmd_scenarios,
    "uncertainty": _cmd_uncertainty,
    "portfolio": _cmd_portfolio,
    "serve": _cmd_serve,
    "runs": _cmd_runs,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


__all__ = ["main"]
