"""Network equipment: switches and the per-site fabric.

The paper's model (equation 2) includes a network term in both the active
and embodied sums.  The IRIS snapshot could not separate network energy from
node energy at most sites, so the network fabric here is sized from the node
count (a top-of-rack switch per ~32 nodes plus a small spine) and its energy
is reported either separately or folded into the facility overhead,
depending on the measurement scope of the instrument used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class SwitchSpec:
    """An Ethernet/InfiniBand switch.

    Attributes
    ----------
    model:
        Model name for reporting.
    ports:
        Number of ports.
    power_w:
        Typical operating draw in watts (switch power is nearly load
        independent, so a single figure suffices).
    embodied_kgco2:
        Manufacturer or estimated embodied carbon for the unit.
    lifetime_years:
        Service lifetime used for amortisation (network kit typically
        outlives servers).
    """

    model: str
    ports: int = 48
    power_w: float = 150.0
    embodied_kgco2: float = 300.0
    lifetime_years: float = 7.0

    def __post_init__(self):
        if not self.model:
            raise ValueError("switch model must be non-empty")
        if self.ports <= 0:
            raise ValueError("ports must be positive")
        if self.power_w < 0:
            raise ValueError("power_w must be non-negative")
        if self.embodied_kgco2 < 0:
            raise ValueError("embodied_kgco2 must be non-negative")
        if self.lifetime_years <= 0:
            raise ValueError("lifetime_years must be positive")


@dataclass(frozen=True)
class NetworkFabric:
    """The network serving one site.

    Attributes
    ----------
    leaf_switches / spine_switches:
        Counts of each switch role.
    leaf_spec / spine_spec:
        Specifications of the switch models in each role.
    """

    leaf_switches: int
    spine_switches: int
    leaf_spec: SwitchSpec
    spine_spec: SwitchSpec

    def __post_init__(self):
        if self.leaf_switches < 0 or self.spine_switches < 0:
            raise ValueError("switch counts must be non-negative")

    @classmethod
    def sized_for_nodes(
        cls,
        node_count: int,
        leaf_spec: SwitchSpec | None = None,
        spine_spec: SwitchSpec | None = None,
        nodes_per_leaf: int = 32,
        leaves_per_spine: int = 8,
    ) -> "NetworkFabric":
        """Size a two-tier fabric for ``node_count`` nodes.

        One leaf (top-of-rack) switch is provisioned per ``nodes_per_leaf``
        nodes, and one spine switch per ``leaves_per_spine`` leaves, with at
        least one spine whenever there is more than one leaf.
        """
        if node_count < 0:
            raise ValueError("node_count must be non-negative")
        leaf_spec = leaf_spec or SwitchSpec(model="generic-48p-leaf")
        spine_spec = spine_spec or SwitchSpec(
            model="generic-32p-spine", ports=32, power_w=250.0, embodied_kgco2=450.0
        )
        leaves = math.ceil(node_count / nodes_per_leaf) if node_count else 0
        spines = math.ceil(leaves / leaves_per_spine) if leaves > 1 else 0
        return cls(
            leaf_switches=leaves,
            spine_switches=spines,
            leaf_spec=leaf_spec,
            spine_spec=spine_spec,
        )

    @property
    def switch_count(self) -> int:
        """Total number of switches in the fabric."""
        return self.leaf_switches + self.spine_switches

    @property
    def total_power_w(self) -> float:
        """Aggregate steady-state power of the fabric in watts."""
        return (
            self.leaf_switches * self.leaf_spec.power_w
            + self.spine_switches * self.spine_spec.power_w
        )

    @property
    def total_embodied_kgco2(self) -> float:
        """Aggregate embodied carbon of the fabric in kgCO2e."""
        return (
            self.leaf_switches * self.leaf_spec.embodied_kgco2
            + self.spine_switches * self.spine_spec.embodied_kgco2
        )

    def energy_kwh(self, hours: float) -> float:
        """Energy used by the fabric over ``hours`` hours, in kWh."""
        if hours < 0:
            raise ValueError("hours must be non-negative")
        return self.total_power_w * hours / 1000.0


__all__ = ["SwitchSpec", "NetworkFabric"]
