"""Hardware inventory substrate.

The IRISCAST audit starts from an inventory of everything the DRI is made of
(Table 1 of the paper): compute nodes, storage nodes, the network that joins
them, and the facilities that host them.  This package models that inventory:

* :mod:`~repro.inventory.components` — specifications of the parts a node is
  built from (CPU, DRAM, SSD/HDD, GPU, PSU, mainboard, chassis, NIC).  These
  feed both the power model (idle/max draw) and the bottom-up embodied-carbon
  estimator.
* :mod:`~repro.inventory.node` — node specifications and node classes
  (compute, storage, login, service).
* :mod:`~repro.inventory.network` — switches and the site network fabric.
* :mod:`~repro.inventory.site` — racks, machine rooms and sites, plus the
  facility attributes (PUE, grid region) needed by the carbon model.
* :mod:`~repro.inventory.infrastructure` — the DRI itself: a named collection
  of sites with convenient aggregation queries.
* :mod:`~repro.inventory.catalog` — a registry of reference node and switch
  configurations used by the simulator and the examples.
* :mod:`~repro.inventory.iris` — the IRIS inventory exactly as reported in
  Table 1 of the paper.
"""

from repro.inventory.components import (
    ChassisSpec,
    ComponentSpec,
    CPUSpec,
    GPUSpec,
    MainboardSpec,
    MemorySpec,
    NICSpec,
    PSUSpec,
    StorageDeviceSpec,
    StorageMedium,
)
from repro.inventory.node import NodeClass, NodeSpec, NodeInstance
from repro.inventory.network import NetworkFabric, SwitchSpec
from repro.inventory.site import Facility, Rack, Site
from repro.inventory.infrastructure import DigitalResearchInfrastructure
from repro.inventory.catalog import HardwareCatalog, default_catalog
from repro.inventory.iris import (
    IRIS_SITE_NODE_COUNTS,
    IRIS_SNAPSHOT_MEASURED_NODES,
    build_iris_infrastructure,
    iris_inventory_table,
)

__all__ = [
    "ChassisSpec",
    "ComponentSpec",
    "CPUSpec",
    "GPUSpec",
    "MainboardSpec",
    "MemorySpec",
    "NICSpec",
    "PSUSpec",
    "StorageDeviceSpec",
    "StorageMedium",
    "NodeClass",
    "NodeSpec",
    "NodeInstance",
    "NetworkFabric",
    "SwitchSpec",
    "Facility",
    "Rack",
    "Site",
    "DigitalResearchInfrastructure",
    "HardwareCatalog",
    "default_catalog",
    "IRIS_SITE_NODE_COUNTS",
    "IRIS_SNAPSHOT_MEASURED_NODES",
    "build_iris_infrastructure",
    "iris_inventory_table",
]
