"""A registry of reference hardware configurations.

The IRIS inventories describe nodes only by role and count, so the
reproduction needs representative node configurations to drive the power
model and the bottom-up embodied estimator.  :func:`default_catalog` builds
a catalog of such configurations chosen so that

* compute-node wall power sits in the 300-450 W band typical of dual-socket
  HPC nodes of the IRIS generation, and
* per-node embodied carbon falls inside the paper's [400, 1100] kgCO2 band.

Users reproducing their own infrastructure register their own specs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.inventory.components import (
    ChassisSpec,
    CPUSpec,
    MainboardSpec,
    MemorySpec,
    NICSpec,
    PSUSpec,
    StorageDeviceSpec,
    StorageMedium,
)
from repro.inventory.network import SwitchSpec
from repro.inventory.node import NodeClass, NodeSpec


class HardwareCatalog:
    """A name-keyed registry of :class:`NodeSpec` and :class:`SwitchSpec`.

    The catalog enforces unique names and offers simple queries by node
    class, which the site builders use to pick a representative spec for
    each role.
    """

    def __init__(self) -> None:
        self._nodes: Dict[str, NodeSpec] = {}
        self._switches: Dict[str, SwitchSpec] = {}

    # -- node specs ----------------------------------------------------------

    def register_node(self, spec: NodeSpec) -> None:
        """Register a node spec; raises ``ValueError`` on duplicate names."""
        if spec.model in self._nodes:
            raise ValueError(f"node spec {spec.model!r} already registered")
        self._nodes[spec.model] = spec

    def node(self, model: str) -> NodeSpec:
        """Look up a node spec by model name."""
        try:
            return self._nodes[model]
        except KeyError:
            raise KeyError(f"no node spec {model!r} in catalog") from None

    def nodes_of_class(self, node_class: NodeClass) -> List[NodeSpec]:
        """All registered specs with the given role."""
        return [spec for spec in self._nodes.values() if spec.node_class is node_class]

    @property
    def node_models(self) -> List[str]:
        return sorted(self._nodes)

    def __contains__(self, model: str) -> bool:
        return model in self._nodes or model in self._switches

    def __len__(self) -> int:
        return len(self._nodes) + len(self._switches)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(list(self._nodes) + list(self._switches)))

    # -- switch specs -----------------------------------------------------------

    def register_switch(self, spec: SwitchSpec) -> None:
        """Register a switch spec; raises ``ValueError`` on duplicate names."""
        if spec.model in self._switches:
            raise ValueError(f"switch spec {spec.model!r} already registered")
        self._switches[spec.model] = spec

    def switch(self, model: str) -> SwitchSpec:
        """Look up a switch spec by model name."""
        try:
            return self._switches[model]
        except KeyError:
            raise KeyError(f"no switch spec {model!r} in catalog") from None

    @property
    def switch_models(self) -> List[str]:
        return sorted(self._switches)


def _standard_compute_node() -> NodeSpec:
    """Dual-socket CPU compute node representative of the IRIS fleet."""
    return NodeSpec(
        model="cpu-compute-standard",
        node_class=NodeClass.COMPUTE,
        cpus=(
            CPUSpec(model="xeon-32c", cores=32, tdp_w=185.0, die_area_mm2=620.0),
            CPUSpec(model="xeon-32c", cores=32, tdp_w=185.0, die_area_mm2=620.0),
        ),
        memory=MemorySpec(model="ddr4-256g", capacity_gb=256.0, dimm_count=16,
                          power_per_dimm_w=4.0),
        storage=(
            StorageDeviceSpec(model="boot-ssd", capacity_tb=0.48,
                              medium=StorageMedium.SSD,
                              active_power_w=6.0, idle_power_w=2.5),
        ),
        psu=PSUSpec(model="800w-platinum", rated_w=800.0, efficiency=0.94, count=2),
        mainboard=MainboardSpec(model="dual-socket-board", base_power_w=40.0),
        chassis=ChassisSpec(model="1u-rack", mass_kg=18.0, rack_units=1),
        nics=(NICSpec(model="cx-25g", speed_gbps=25.0, power_w=14.0, ports=2),),
        embodied_kgco2_datasheet=750.0,
    )


def _small_compute_node() -> NodeSpec:
    """Single-socket compute node (smaller university clusters)."""
    return NodeSpec(
        model="cpu-compute-small",
        node_class=NodeClass.COMPUTE,
        cpus=(CPUSpec(model="xeon-32c", cores=32, tdp_w=185.0, die_area_mm2=620.0),),
        memory=MemorySpec(model="ddr4-128g", capacity_gb=128.0, dimm_count=8,
                          power_per_dimm_w=4.0),
        storage=(
            StorageDeviceSpec(model="boot-ssd", capacity_tb=0.48,
                              medium=StorageMedium.SSD,
                              active_power_w=6.0, idle_power_w=2.5),
        ),
        psu=PSUSpec(model="550w-platinum", rated_w=550.0, efficiency=0.94, count=2),
        mainboard=MainboardSpec(model="single-socket-board", base_power_w=30.0),
        chassis=ChassisSpec(model="1u-rack", mass_kg=16.0, rack_units=1),
        nics=(NICSpec(model="cx-25g", speed_gbps=25.0, power_w=14.0, ports=2),),
        embodied_kgco2_datasheet=520.0,
    )


def _highmem_compute_node() -> NodeSpec:
    """Large-memory compute node (cloud hosting / analysis workloads)."""
    return NodeSpec(
        model="cpu-compute-highmem",
        node_class=NodeClass.COMPUTE,
        cpus=(
            CPUSpec(model="epyc-48c", cores=48, tdp_w=225.0, die_area_mm2=700.0),
            CPUSpec(model="epyc-48c", cores=48, tdp_w=225.0, die_area_mm2=700.0),
        ),
        memory=MemorySpec(model="ddr4-1t", capacity_gb=1024.0, dimm_count=32,
                          power_per_dimm_w=4.5),
        storage=(
            StorageDeviceSpec(model="nvme-2t", capacity_tb=1.92,
                              medium=StorageMedium.NVME,
                              active_power_w=9.0, idle_power_w=4.0),
        ),
        psu=PSUSpec(model="1200w-platinum", rated_w=1200.0, efficiency=0.94, count=2),
        mainboard=MainboardSpec(model="dual-socket-board", base_power_w=45.0),
        chassis=ChassisSpec(model="2u-rack", mass_kg=26.0, rack_units=2),
        nics=(NICSpec(model="cx-100g", speed_gbps=100.0, power_w=20.0, ports=2),),
        embodied_kgco2_datasheet=1050.0,
    )


def _storage_node() -> NodeSpec:
    """Disk-heavy storage server (Ceph / Lustre OSS style)."""
    drives = tuple(
        StorageDeviceSpec(model=f"hdd-16t-{i}", capacity_tb=16.0,
                          medium=StorageMedium.HDD,
                          active_power_w=8.5, idle_power_w=5.5)
        for i in range(24)
    ) + (
        StorageDeviceSpec(model="journal-nvme", capacity_tb=1.92,
                          medium=StorageMedium.NVME,
                          active_power_w=9.0, idle_power_w=4.0),
    )
    return NodeSpec(
        model="storage-server",
        node_class=NodeClass.STORAGE,
        cpus=(CPUSpec(model="xeon-16c", cores=16, tdp_w=125.0, die_area_mm2=400.0),),
        memory=MemorySpec(model="ddr4-192g", capacity_gb=192.0, dimm_count=12,
                          power_per_dimm_w=4.0),
        storage=drives,
        psu=PSUSpec(model="1100w-platinum", rated_w=1100.0, efficiency=0.93, count=2),
        mainboard=MainboardSpec(model="storage-board", base_power_w=45.0),
        chassis=ChassisSpec(model="4u-storage", mass_kg=40.0, rack_units=4),
        nics=(NICSpec(model="cx-25g", speed_gbps=25.0, power_w=14.0, ports=2),),
        embodied_kgco2_datasheet=1100.0,
    )


def _login_node() -> NodeSpec:
    """Login / interactive node."""
    return NodeSpec(
        model="login-node",
        node_class=NodeClass.LOGIN,
        cpus=(CPUSpec(model="xeon-16c", cores=16, tdp_w=125.0, die_area_mm2=400.0),),
        memory=MemorySpec(model="ddr4-128g", capacity_gb=128.0, dimm_count=8,
                          power_per_dimm_w=4.0),
        storage=(
            StorageDeviceSpec(model="boot-ssd", capacity_tb=0.96,
                              medium=StorageMedium.SSD,
                              active_power_w=6.0, idle_power_w=2.5),
        ),
        psu=PSUSpec(model="550w-gold", rated_w=550.0, efficiency=0.92, count=2),
        mainboard=MainboardSpec(model="single-socket-board", base_power_w=30.0),
        chassis=ChassisSpec(model="1u-rack", mass_kg=16.0, rack_units=1),
        nics=(NICSpec(model="cx-25g", speed_gbps=25.0, power_w=14.0, ports=2),),
        embodied_kgco2_datasheet=500.0,
    )


def _service_node() -> NodeSpec:
    """Service/management node (scheduler, monitoring, provisioning)."""
    return NodeSpec(
        model="service-node",
        node_class=NodeClass.SERVICE,
        cpus=(CPUSpec(model="xeon-8c", cores=8, tdp_w=85.0, die_area_mm2=250.0),),
        memory=MemorySpec(model="ddr4-64g", capacity_gb=64.0, dimm_count=4,
                          power_per_dimm_w=4.0),
        storage=(
            StorageDeviceSpec(model="boot-ssd", capacity_tb=0.48,
                              medium=StorageMedium.SSD,
                              active_power_w=6.0, idle_power_w=2.5),
        ),
        psu=PSUSpec(model="450w-gold", rated_w=450.0, efficiency=0.91, count=1),
        mainboard=MainboardSpec(model="single-socket-board", base_power_w=25.0),
        chassis=ChassisSpec(model="1u-rack", mass_kg=14.0, rack_units=1),
        nics=(NICSpec(model="1g-onboard", speed_gbps=1.0, power_w=3.0, ports=2),),
        embodied_kgco2_datasheet=400.0,
    )


def default_catalog() -> HardwareCatalog:
    """Build the default reference catalog used by the IRIS reproduction."""
    catalog = HardwareCatalog()
    catalog.register_node(_standard_compute_node())
    catalog.register_node(_small_compute_node())
    catalog.register_node(_highmem_compute_node())
    catalog.register_node(_storage_node())
    catalog.register_node(_login_node())
    catalog.register_node(_service_node())
    catalog.register_switch(SwitchSpec(model="tor-48p-25g", ports=48, power_w=150.0,
                                       embodied_kgco2=300.0, lifetime_years=7.0))
    catalog.register_switch(SwitchSpec(model="spine-32p-100g", ports=32, power_w=250.0,
                                       embodied_kgco2=450.0, lifetime_years=7.0))
    return catalog


__all__ = ["HardwareCatalog", "default_catalog"]
