"""Component-level hardware specifications.

A node is described as a bill of materials of the components below.  Each
spec carries the attributes needed by the two downstream consumers:

* the **power model** (:mod:`repro.power.node_power`) uses idle/max power
  figures (TDP for CPUs/GPUs, per-DIMM and per-drive draw for memory and
  storage);
* the **embodied-carbon estimator** (:mod:`repro.embodied.bottom_up`) uses
  manufacturing-relevant attributes (die area, DRAM capacity, storage
  capacity and medium, chassis mass).

Values are validated on construction so that an inventory assembled from CSV
files fails early rather than producing nonsense carbon numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class StorageMedium(Enum):
    """Storage technology; embodied and active factors differ widely."""

    SSD = "ssd"
    HDD = "hdd"
    NVME = "nvme"


def _require_positive(value: float, name: str) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def _require_non_negative(value: float, name: str) -> None:
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


@dataclass(frozen=True)
class ComponentSpec:
    """Base class for hardware component specifications.

    Attributes
    ----------
    model:
        Free-form model name, used for reporting and catalog lookups.
    """

    model: str

    def __post_init__(self):
        if not self.model:
            raise ValueError("component model name must be non-empty")


@dataclass(frozen=True)
class CPUSpec(ComponentSpec):
    """A CPU package.

    Attributes
    ----------
    cores:
        Number of physical cores.
    tdp_w:
        Thermal design power in watts; used as the package's maximum
        sustained draw by the power model.
    die_area_mm2:
        Total die area in square millimetres; drives the wafer-production
        term of the bottom-up embodied estimate.
    base_clock_ghz:
        Nominal clock, used only for reporting.
    """

    cores: int = 32
    tdp_w: float = 180.0
    die_area_mm2: float = 600.0
    base_clock_ghz: float = 2.4

    def __post_init__(self):
        super().__post_init__()
        _require_positive(self.cores, "cores")
        _require_positive(self.tdp_w, "tdp_w")
        _require_positive(self.die_area_mm2, "die_area_mm2")
        _require_positive(self.base_clock_ghz, "base_clock_ghz")


@dataclass(frozen=True)
class MemorySpec(ComponentSpec):
    """Installed DRAM.

    Attributes
    ----------
    capacity_gb:
        Total installed capacity in gigabytes.
    dimm_count:
        Number of DIMMs; per-DIMM idle power is roughly constant so the
        count matters more than capacity for the idle draw.
    power_per_dimm_w:
        Active power per DIMM in watts.
    """

    capacity_gb: float = 256.0
    dimm_count: int = 8
    power_per_dimm_w: float = 4.0

    def __post_init__(self):
        super().__post_init__()
        _require_positive(self.capacity_gb, "capacity_gb")
        _require_positive(self.dimm_count, "dimm_count")
        _require_non_negative(self.power_per_dimm_w, "power_per_dimm_w")


@dataclass(frozen=True)
class StorageDeviceSpec(ComponentSpec):
    """A storage drive (SSD, NVMe or HDD).

    Attributes
    ----------
    capacity_tb:
        Capacity in terabytes.
    medium:
        Storage technology; SSD/NVMe embodied carbon per TB is roughly an
        order of magnitude above HDD.
    active_power_w / idle_power_w:
        Electrical draw when busy / idle.
    """

    capacity_tb: float = 1.0
    medium: StorageMedium = StorageMedium.SSD
    active_power_w: float = 8.0
    idle_power_w: float = 4.0

    def __post_init__(self):
        super().__post_init__()
        _require_positive(self.capacity_tb, "capacity_tb")
        if not isinstance(self.medium, StorageMedium):
            raise ValueError(f"medium must be a StorageMedium, got {self.medium!r}")
        _require_non_negative(self.active_power_w, "active_power_w")
        _require_non_negative(self.idle_power_w, "idle_power_w")
        if self.idle_power_w > self.active_power_w:
            raise ValueError("idle_power_w must not exceed active_power_w")


@dataclass(frozen=True)
class GPUSpec(ComponentSpec):
    """An accelerator card."""

    tdp_w: float = 300.0
    die_area_mm2: float = 800.0
    memory_gb: float = 40.0

    def __post_init__(self):
        super().__post_init__()
        _require_positive(self.tdp_w, "tdp_w")
        _require_positive(self.die_area_mm2, "die_area_mm2")
        _require_positive(self.memory_gb, "memory_gb")


@dataclass(frozen=True)
class PSUSpec(ComponentSpec):
    """A power supply unit.

    ``efficiency`` is the AC-to-DC conversion efficiency at typical load
    (e.g. 0.94 for an 80 PLUS Platinum unit); losses show up as extra wall
    power in the node power model.
    """

    rated_w: float = 800.0
    efficiency: float = 0.92
    count: int = 2

    def __post_init__(self):
        super().__post_init__()
        _require_positive(self.rated_w, "rated_w")
        if not 0.5 < self.efficiency <= 1.0:
            raise ValueError(
                f"PSU efficiency must be in (0.5, 1.0], got {self.efficiency!r}"
            )
        _require_positive(self.count, "count")


@dataclass(frozen=True)
class MainboardSpec(ComponentSpec):
    """The mainboard plus fixed peripherals (BMC, fans, VRMs)."""

    base_power_w: float = 35.0

    def __post_init__(self):
        super().__post_init__()
        _require_non_negative(self.base_power_w, "base_power_w")


@dataclass(frozen=True)
class ChassisSpec(ComponentSpec):
    """The enclosure; mass drives the sheet-metal embodied term."""

    mass_kg: float = 20.0
    rack_units: int = 1

    def __post_init__(self):
        super().__post_init__()
        _require_positive(self.mass_kg, "mass_kg")
        _require_positive(self.rack_units, "rack_units")


@dataclass(frozen=True)
class NICSpec(ComponentSpec):
    """A network interface card."""

    speed_gbps: float = 25.0
    power_w: float = 15.0
    ports: int = 2

    def __post_init__(self):
        super().__post_init__()
        _require_positive(self.speed_gbps, "speed_gbps")
        _require_non_negative(self.power_w, "power_w")
        _require_positive(self.ports, "ports")


__all__ = [
    "StorageMedium",
    "ComponentSpec",
    "CPUSpec",
    "MemorySpec",
    "StorageDeviceSpec",
    "GPUSpec",
    "PSUSpec",
    "MainboardSpec",
    "ChassisSpec",
    "NICSpec",
]
