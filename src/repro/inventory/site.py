"""Racks, facilities and sites.

A :class:`Site` is the unit at which the paper reports energy (Table 2): it
owns a set of racks of nodes, a network fabric, and a hosting
:class:`Facility` whose attributes (PUE, grid region, measurement
capabilities) determine how that site's energy is measured and converted to
carbon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.inventory.network import NetworkFabric
from repro.inventory.node import NodeClass, NodeInstance


@dataclass(frozen=True)
class Facility:
    """The data centre (machine room) hosting a site's hardware.

    Attributes
    ----------
    name:
        Facility name for reporting.
    pue:
        Power Usage Effectiveness — total facility power divided by IT
        power.  The paper could not measure PUE and sweeps {1.1, 1.3, 1.5};
        a facility built from measured data can carry its actual value here.
    grid_region:
        Key into the grid-intensity registry (:mod:`repro.grid.regions`);
        all IRIS sites draw from the GB grid.
    embodied_kgco2:
        Embodied carbon of the building, cooling and power-distribution
        plant attributable to this site's hardware.  The paper explicitly
        leaves this out of its numbers; it is carried here so the extension
        benches can include it.
    lifetime_years:
        Amortisation lifetime of the facility infrastructure.
    has_facility_meter / has_pdu_metering:
        Which out-of-band measurement scopes the facility supports; drives
        which columns of Table 2 can be populated for the site.
    """

    name: str
    pue: float = 1.3
    grid_region: str = "GB"
    embodied_kgco2: float = 0.0
    lifetime_years: float = 20.0
    has_facility_meter: bool = True
    has_pdu_metering: bool = True

    def __post_init__(self):
        if not self.name:
            raise ValueError("facility name must be non-empty")
        if self.pue < 1.0:
            raise ValueError(f"PUE cannot be below 1.0, got {self.pue!r}")
        if self.embodied_kgco2 < 0:
            raise ValueError("embodied_kgco2 must be non-negative")
        if self.lifetime_years <= 0:
            raise ValueError("lifetime_years must be positive")


@dataclass(frozen=True)
class Rack:
    """A rack of nodes within a site."""

    rack_id: str
    nodes: Tuple[NodeInstance, ...] = ()

    def __post_init__(self):
        if not self.rack_id:
            raise ValueError("rack_id must be non-empty")
        object.__setattr__(self, "nodes", tuple(self.nodes))
        seen = set()
        for node in self.nodes:
            if node.node_id in seen:
                raise ValueError(f"duplicate node_id {node.node_id!r} in rack {self.rack_id!r}")
            seen.add(node.node_id)

    @property
    def node_count(self) -> int:
        return len(self.nodes)


class Site:
    """A provider site contributing hardware to the DRI.

    Parameters
    ----------
    name:
        Short site code as used in the paper's tables (``"QMUL"``, ``"DUR"``...).
    racks:
        Racks of installed nodes.
    facility:
        The hosting facility.
    network:
        The site network fabric; sized from the node count when omitted.
    description:
        Longer human-readable name for reports.
    """

    def __init__(
        self,
        name: str,
        racks: Iterable[Rack],
        facility: Facility,
        network: Optional[NetworkFabric] = None,
        description: str = "",
    ):
        if not name:
            raise ValueError("site name must be non-empty")
        self._name = name
        self._racks: Tuple[Rack, ...] = tuple(racks)
        rack_ids = [r.rack_id for r in self._racks]
        if len(rack_ids) != len(set(rack_ids)):
            raise ValueError(f"duplicate rack ids at site {name!r}")
        node_ids = [n.node_id for n in self.nodes]
        if len(node_ids) != len(set(node_ids)):
            raise ValueError(f"duplicate node ids at site {name!r}")
        self._facility = facility
        self._network = network or NetworkFabric.sized_for_nodes(len(node_ids))
        self._description = description or name

    # -- identity ---------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def description(self) -> str:
        return self._description

    @property
    def facility(self) -> Facility:
        return self._facility

    @property
    def network(self) -> NetworkFabric:
        return self._network

    @property
    def racks(self) -> Tuple[Rack, ...]:
        return self._racks

    # -- node queries -----------------------------------------------------------

    @property
    def nodes(self) -> List[NodeInstance]:
        """All installed nodes across all racks."""
        return [node for rack in self._racks for node in rack.nodes]

    @property
    def node_count(self) -> int:
        return sum(rack.node_count for rack in self._racks)

    def nodes_of_class(self, node_class: NodeClass) -> List[NodeInstance]:
        """Nodes with the given functional role."""
        return [node for node in self.nodes if node.node_class is node_class]

    def count_by_class(self) -> Dict[NodeClass, int]:
        """Node counts keyed by :class:`NodeClass` (zero-count classes omitted)."""
        counts: Dict[NodeClass, int] = {}
        for node in self.nodes:
            counts[node.node_class] = counts.get(node.node_class, 0) + 1
        return counts

    def get_node(self, node_id: str) -> NodeInstance:
        """Look up a node by id; raises ``KeyError`` if absent."""
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise KeyError(f"no node {node_id!r} at site {self._name!r}")

    def __repr__(self) -> str:
        return f"Site(name={self._name!r}, nodes={self.node_count}, pue={self._facility.pue})"


__all__ = ["Facility", "Rack", "Site"]
