"""The digital research infrastructure (DRI) aggregate.

A :class:`DigitalResearchInfrastructure` is a named collection of sites —
the object the carbon model is evaluated over.  It provides the aggregate
queries the model and the reporting layer need (node counts by site and
class, all nodes, per-site lookup) without owning any carbon or energy
semantics itself.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.inventory.node import NodeClass, NodeInstance
from repro.inventory.site import Site


class DigitalResearchInfrastructure:
    """A federation of provider sites operated as one research infrastructure.

    Parameters
    ----------
    name:
        Infrastructure name (``"IRIS"`` in the paper).
    sites:
        The participating sites; site names must be unique.
    """

    def __init__(self, name: str, sites: Iterable[Site]):
        if not name:
            raise ValueError("infrastructure name must be non-empty")
        self._name = name
        self._sites: Tuple[Site, ...] = tuple(sites)
        if not self._sites:
            raise ValueError("an infrastructure needs at least one site")
        names = [site.name for site in self._sites]
        if len(names) != len(set(names)):
            raise ValueError("site names must be unique")
        self._by_name: Dict[str, Site] = {site.name: site for site in self._sites}

    @property
    def name(self) -> str:
        return self._name

    @property
    def sites(self) -> Tuple[Site, ...]:
        return self._sites

    @property
    def site_names(self) -> List[str]:
        return [site.name for site in self._sites]

    def site(self, name: str) -> Site:
        """Look up a site by name; raises ``KeyError`` if absent."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no site {name!r} in infrastructure {self._name!r}") from None

    # -- aggregate queries --------------------------------------------------------

    @property
    def nodes(self) -> List[NodeInstance]:
        """Every installed node across all sites."""
        return [node for site in self._sites for node in site.nodes]

    @property
    def node_count(self) -> int:
        return sum(site.node_count for site in self._sites)

    def node_count_by_site(self) -> Dict[str, int]:
        """Node counts keyed by site name."""
        return {site.name: site.node_count for site in self._sites}

    def node_count_by_class(self) -> Dict[NodeClass, int]:
        """Node counts keyed by functional class across the whole DRI."""
        counts: Dict[NodeClass, int] = {}
        for site in self._sites:
            for node_class, count in site.count_by_class().items():
                counts[node_class] = counts.get(node_class, 0) + count
        return counts

    def nodes_of_class(self, node_class: NodeClass) -> List[NodeInstance]:
        """Every node of the given class across all sites."""
        return [node for site in self._sites for node in site.nodes_of_class(node_class)]

    @property
    def switch_count(self) -> int:
        """Total switches across all site fabrics."""
        return sum(site.network.switch_count for site in self._sites)

    def __repr__(self) -> str:
        return (
            f"DigitalResearchInfrastructure(name={self._name!r}, "
            f"sites={len(self._sites)}, nodes={self.node_count})"
        )


__all__ = ["DigitalResearchInfrastructure"]
