"""Node specifications and node classes.

The paper's inventory distinguishes CPU compute nodes and storage nodes
(Table 1) and its carbon model additionally names login and service nodes as
active-energy components (section 4.1).  :class:`NodeClass` captures that
taxonomy, :class:`NodeSpec` the per-model bill of materials, and
:class:`NodeInstance` a physically installed node (spec + identity + the
attributes that vary per unit: install date, assigned lifetime, share of the
node assigned to the DRI).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

from repro.inventory.components import (
    ChassisSpec,
    CPUSpec,
    GPUSpec,
    MainboardSpec,
    MemorySpec,
    NICSpec,
    PSUSpec,
    StorageDeviceSpec,
)


class NodeClass(Enum):
    """Functional role of a node within the DRI."""

    COMPUTE = "compute"
    STORAGE = "storage"
    LOGIN = "login"
    SERVICE = "service"


@dataclass(frozen=True)
class NodeSpec:
    """The hardware configuration of a node model.

    Attributes
    ----------
    model:
        Model name used for catalog lookup and reporting.
    node_class:
        Functional role (compute, storage, login, service).
    cpus:
        CPU packages installed (usually one or two identical sockets).
    memory:
        Installed DRAM.
    storage:
        Storage drives installed.
    gpus:
        Accelerator cards (empty for the IRIS CPU nodes).
    psu / mainboard / chassis / nics:
        Remaining bill of materials.
    embodied_kgco2_datasheet:
        Manufacturer-declared product carbon footprint for the whole node,
        in kgCO2e, when a datasheet value is available.  ``None`` means the
        bottom-up estimator must be used instead.
    """

    model: str
    node_class: NodeClass = NodeClass.COMPUTE
    cpus: Tuple[CPUSpec, ...] = ()
    memory: Optional[MemorySpec] = None
    storage: Tuple[StorageDeviceSpec, ...] = ()
    gpus: Tuple[GPUSpec, ...] = ()
    psu: Optional[PSUSpec] = None
    mainboard: Optional[MainboardSpec] = None
    chassis: Optional[ChassisSpec] = None
    nics: Tuple[NICSpec, ...] = ()
    embodied_kgco2_datasheet: Optional[float] = None

    def __post_init__(self):
        if not self.model:
            raise ValueError("node model name must be non-empty")
        if not isinstance(self.node_class, NodeClass):
            raise ValueError(f"node_class must be a NodeClass, got {self.node_class!r}")
        object.__setattr__(self, "cpus", tuple(self.cpus))
        object.__setattr__(self, "storage", tuple(self.storage))
        object.__setattr__(self, "gpus", tuple(self.gpus))
        object.__setattr__(self, "nics", tuple(self.nics))
        if self.embodied_kgco2_datasheet is not None and self.embodied_kgco2_datasheet <= 0:
            raise ValueError("embodied_kgco2_datasheet must be positive when given")

    # -- derived quantities used by the power model ---------------------------

    @property
    def total_cores(self) -> int:
        """Total physical cores across all sockets."""
        return sum(cpu.cores for cpu in self.cpus)

    @property
    def cpu_tdp_w(self) -> float:
        """Sum of CPU TDPs in watts."""
        return sum(cpu.tdp_w for cpu in self.cpus)

    @property
    def gpu_tdp_w(self) -> float:
        """Sum of GPU TDPs in watts."""
        return sum(gpu.tdp_w for gpu in self.gpus)

    @property
    def memory_power_w(self) -> float:
        """Active DRAM power in watts."""
        if self.memory is None:
            return 0.0
        return self.memory.dimm_count * self.memory.power_per_dimm_w

    @property
    def storage_active_power_w(self) -> float:
        """Active storage power in watts."""
        return sum(drive.active_power_w for drive in self.storage)

    @property
    def storage_idle_power_w(self) -> float:
        """Idle storage power in watts."""
        return sum(drive.idle_power_w for drive in self.storage)

    @property
    def nic_power_w(self) -> float:
        """NIC power in watts."""
        return sum(nic.power_w for nic in self.nics)

    @property
    def base_power_w(self) -> float:
        """Mainboard and fixed-peripheral power in watts."""
        return self.mainboard.base_power_w if self.mainboard is not None else 0.0

    @property
    def psu_efficiency(self) -> float:
        """AC-DC conversion efficiency; 1.0 when no PSU spec is given."""
        return self.psu.efficiency if self.psu is not None else 1.0

    @property
    def total_storage_tb(self) -> float:
        """Total installed storage capacity in TB."""
        return sum(drive.capacity_tb for drive in self.storage)

    @property
    def memory_gb(self) -> float:
        """Installed DRAM in GB."""
        return self.memory.capacity_gb if self.memory is not None else 0.0


@dataclass(frozen=True)
class NodeInstance:
    """A physically installed node.

    Attributes
    ----------
    node_id:
        Unique identifier within the DRI (``"<site>-<rack>-<index>"`` by
        convention).
    spec:
        The hardware configuration.
    lifetime_years:
        Expected service lifetime used to amortise embodied carbon; the
        paper sweeps 3-7 years.
    dri_share:
        Fraction of the node assigned to the DRI (the paper assumes nodes
        are fully assigned, i.e. 1.0, but shared cloud resources need less).
    """

    node_id: str
    spec: NodeSpec
    lifetime_years: float = 5.0
    dri_share: float = 1.0

    def __post_init__(self):
        if not self.node_id:
            raise ValueError("node_id must be non-empty")
        if self.lifetime_years <= 0:
            raise ValueError(f"lifetime_years must be positive, got {self.lifetime_years!r}")
        if not 0.0 < self.dri_share <= 1.0:
            raise ValueError(f"dri_share must be in (0, 1], got {self.dri_share!r}")

    @property
    def node_class(self) -> NodeClass:
        """Functional role, taken from the spec."""
        return self.spec.node_class


__all__ = ["NodeClass", "NodeSpec", "NodeInstance"]
