"""The IRIS inventory and the paper's reference data.

This module encodes, as data, everything the paper reports about the IRIS
digital research infrastructure:

* Table 1 — the hardware contributed by each site
  (:data:`IRIS_SITE_NODE_COUNTS`);
* the "Nodes" column of Table 2 — how many nodes were actually captured by
  the snapshot measurement at each site
  (:data:`IRIS_SNAPSHOT_MEASURED_NODES`);
* the measured per-site energy of Table 2
  (:data:`PAPER_TABLE2_ENERGY_KWH`, :data:`PAPER_TABLE2_TOTAL_KWH`);
* the server count implied by the arithmetic of Table 4
  (:data:`IRIS_IMPLIED_SERVER_COUNT`).

It also provides :func:`build_iris_infrastructure`, which assembles a
:class:`~repro.inventory.infrastructure.DigitalResearchInfrastructure`
mirroring the IRIS snapshot using representative node configurations from
the default catalog, and :func:`iris_inventory_table`, which renders the
Table 1 summary rows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.inventory.catalog import HardwareCatalog, default_catalog
from repro.inventory.infrastructure import DigitalResearchInfrastructure
from repro.inventory.node import NodeInstance
from repro.inventory.site import Facility, Rack, Site

# --------------------------------------------------------------------------
# Table 1: hardware included in the project, by site.
# Keys are (site, node_class); values are node counts.
# --------------------------------------------------------------------------

IRIS_SITE_NODE_COUNTS: Dict[str, Dict[str, int]] = {
    "QMUL": {"cpu": 118},
    "CAM": {"cpu": 60},
    "DUR": {"cpu": 808, "storage": 64},
    "STFC SCARF": {"cpu": 699},
    "STFC CLOUD": {"cpu": 651, "storage": 105},
    "IMP": {"cpu": 241},
}

#: Human-readable site descriptions, as used in Table 1.
IRIS_SITE_DESCRIPTIONS: Dict[str, str] = {
    "QMUL": "Queen Mary University of London",
    "CAM": "Cambridge University",
    "DUR": "Durham University",
    "STFC SCARF": "Rutherford Appleton Laboratory (SCARF HPC system)",
    "STFC CLOUD": "Rutherford Appleton Laboratory (STFC Cloud)",
    "IMP": "Imperial College London",
}

# --------------------------------------------------------------------------
# Table 2: the snapshot measurement.  Node counts actually captured, and the
# energy reported by each measurement method (kWh over the 24 h snapshot).
# A value of None means that method was not available at that site.
# --------------------------------------------------------------------------

IRIS_SNAPSHOT_MEASURED_NODES: Dict[str, int] = {
    "QMUL": 118,
    "CAM": 59,
    "DUR": 876,
    "STFC CLOUD": 721,
    "STFC SCARF": 571,
    "IMP": 117,
}

PAPER_TABLE2_ENERGY_KWH: Dict[str, Dict[str, Optional[float]]] = {
    "QMUL": {"facility": 1299.0, "pdu": 1299.0, "ipmi": 1279.0, "turbostat": 1214.0},
    "CAM": {"facility": 261.0, "pdu": None, "ipmi": 261.0, "turbostat": None},
    "DUR": {"facility": 8154.0, "pdu": 8154.0, "ipmi": 6267.0, "turbostat": None},
    "STFC CLOUD": {"facility": 3831.0, "pdu": None, "ipmi": 3831.0, "turbostat": None},
    "STFC SCARF": {"facility": 4271.0, "pdu": 4271.0, "ipmi": 3292.0, "turbostat": None},
    "IMP": {"facility": 944.0, "pdu": None, "ipmi": 944.0, "turbostat": None},
}

#: The paper's reported total for the snapshot (kWh): the widest-scope
#: measurement available at each site, summed across sites.
PAPER_TABLE2_TOTAL_KWH: float = 18760.0

#: Server count implied by the arithmetic of Table 4 (snapshot embodied
#: carbon divided by per-server-per-day embodied carbon).  This differs
#: slightly from the sum of the Table 2 "Nodes" column (2462); the
#: discrepancy is recorded in EXPERIMENTS.md.
IRIS_IMPLIED_SERVER_COUNT: int = 2398

#: Duration of the snapshot evaluation, in hours.
IRIS_SNAPSHOT_HOURS: float = 24.0

#: Average per-node wall power (watts) implied by Table 2 (widest-scope
#: energy divided by node count and snapshot duration).  Used to calibrate
#: the workload simulator so that the simulated campaign lands on the
#: paper's per-site energy.
IRIS_SITE_MEAN_NODE_POWER_W: Dict[str, float] = {
    site: 1000.0 * max(v for v in methods.values() if v is not None)
    / (IRIS_SNAPSHOT_MEASURED_NODES[site] * IRIS_SNAPSHOT_HOURS)
    for site, methods in PAPER_TABLE2_ENERGY_KWH.items()
}

#: Fraction of each site's measured nodes modelled as storage servers.  The
#: inventories (Table 1) report storage nodes only at Durham and the STFC
#: Cloud; the snapshot node counts do not break the split out, so the
#: Table 1 proportions are applied to the measured counts.
IRIS_SITE_STORAGE_FRACTION: Dict[str, float] = {
    "QMUL": 0.0,
    "CAM": 0.0,
    "DUR": 64.0 / (808.0 + 64.0),
    "STFC SCARF": 0.0,
    "STFC CLOUD": 105.0 / (651.0 + 105.0),
    "IMP": 0.0,
}

#: Which measurement methods each site could provide during the snapshot
#: (the non-empty cells of Table 2).
IRIS_SITE_MEASUREMENT_METHODS: Dict[str, Tuple[str, ...]] = {
    site: tuple(method for method, value in methods.items() if value is not None)
    for site, methods in PAPER_TABLE2_ENERGY_KWH.items()
}


def _site_racks(
    site_name: str,
    compute_count: int,
    storage_count: int,
    catalog: HardwareCatalog,
    lifetime_years: float,
    nodes_per_rack: int = 40,
) -> List[Rack]:
    """Pack the requested node counts into racks of ``nodes_per_rack``."""
    compute_spec = catalog.node("cpu-compute-standard")
    storage_spec = catalog.node("storage-server")
    instances: List[NodeInstance] = []
    for index in range(compute_count):
        instances.append(
            NodeInstance(
                node_id=f"{site_name}-cpu-{index:04d}",
                spec=compute_spec,
                lifetime_years=lifetime_years,
            )
        )
    for index in range(storage_count):
        instances.append(
            NodeInstance(
                node_id=f"{site_name}-sto-{index:04d}",
                spec=storage_spec,
                lifetime_years=lifetime_years,
            )
        )
    racks: List[Rack] = []
    for rack_index in range(0, len(instances), nodes_per_rack):
        chunk = instances[rack_index: rack_index + nodes_per_rack]
        racks.append(Rack(rack_id=f"{site_name}-rack-{rack_index // nodes_per_rack:02d}",
                          nodes=tuple(chunk)))
    if not racks:
        racks.append(Rack(rack_id=f"{site_name}-rack-00", nodes=()))
    return racks


def build_iris_infrastructure(
    catalog: Optional[HardwareCatalog] = None,
    use_measured_counts: bool = True,
    lifetime_years: float = 5.0,
    pue: float = 1.3,
) -> DigitalResearchInfrastructure:
    """Assemble the IRIS infrastructure from the paper's inventory tables.

    Parameters
    ----------
    catalog:
        Hardware catalog supplying the representative node configurations;
        the default catalog is used when omitted.
    use_measured_counts:
        If True (default) build the infrastructure with the node counts the
        snapshot actually measured (Table 2, the counts all carbon numbers
        are based on); if False use the full inventory counts of Table 1.
    lifetime_years:
        Amortisation lifetime assigned to every node.
    pue:
        Power usage effectiveness assigned to every facility (the paper
        sweeps this downstream, so the inventory value is only a default).
    """
    catalog = catalog or default_catalog()
    sites: List[Site] = []
    for site_name in IRIS_SITE_NODE_COUNTS:
        if use_measured_counts:
            total = IRIS_SNAPSHOT_MEASURED_NODES[site_name]
            storage_fraction = IRIS_SITE_STORAGE_FRACTION[site_name]
            storage_count = int(round(total * storage_fraction))
            compute_count = total - storage_count
        else:
            counts = IRIS_SITE_NODE_COUNTS[site_name]
            compute_count = counts.get("cpu", 0)
            storage_count = counts.get("storage", 0)
        methods = IRIS_SITE_MEASUREMENT_METHODS[site_name]
        facility = Facility(
            name=f"{site_name} machine room",
            pue=pue,
            grid_region="GB",
            has_facility_meter="facility" in methods,
            has_pdu_metering="pdu" in methods,
        )
        racks = _site_racks(site_name, compute_count, storage_count, catalog,
                            lifetime_years)
        sites.append(
            Site(
                name=site_name,
                racks=racks,
                facility=facility,
                description=IRIS_SITE_DESCRIPTIONS[site_name],
            )
        )
    return DigitalResearchInfrastructure(name="IRIS", sites=sites)


def iris_inventory_table() -> List[Dict[str, object]]:
    """Rows reproducing Table 1 of the paper (hardware included per site).

    Each row has ``site``, ``description``, ``cpu_nodes`` and
    ``storage_nodes`` keys; sites appear in the paper's order.
    """
    rows: List[Dict[str, object]] = []
    for site_name, counts in IRIS_SITE_NODE_COUNTS.items():
        rows.append(
            {
                "site": site_name,
                "description": IRIS_SITE_DESCRIPTIONS[site_name],
                "cpu_nodes": counts.get("cpu", 0),
                "storage_nodes": counts.get("storage", 0),
            }
        )
    return rows


__all__ = [
    "IRIS_SITE_NODE_COUNTS",
    "IRIS_SITE_DESCRIPTIONS",
    "IRIS_SNAPSHOT_MEASURED_NODES",
    "PAPER_TABLE2_ENERGY_KWH",
    "PAPER_TABLE2_TOTAL_KWH",
    "IRIS_IMPLIED_SERVER_COUNT",
    "IRIS_SNAPSHOT_HOURS",
    "IRIS_SITE_MEAN_NODE_POWER_W",
    "IRIS_SITE_STORAGE_FRACTION",
    "IRIS_SITE_MEASUREMENT_METHODS",
    "build_iris_infrastructure",
    "iris_inventory_table",
]
