"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
that editable installs keep working on older toolchains (setuptools without
PEP 660 support / environments without the ``wheel`` package).
"""

from setuptools import setup

setup()
