#!/usr/bin/env python3
"""A three-region siting study with the federated portfolio engine.

The paper assesses one facility on one grid; an operator deciding *where*
capacity and workload should live needs the same method federated across
regions.  This example runs that study end to end:

1. a GB/FR/PL portfolio — one physical deployment, three candidate grids —
   runs as a single :class:`~repro.portfolio.runner.PortfolioRunner` call
   over **one** shared substrate (three sites, one simulation, asserted);
2. the marginal-placement ranking answers "which site takes the next MWh
   cheapest?", under both snapshot (period-average) and carbon-aware
   (clean-hour) accounting;
3. a region × load-split sweep
   (:meth:`~repro.api.batch.BatchAssessmentRunner.sweep_portfolio`) maps
   how the portfolio's placed carbon falls as load migrates to the
   cleanest grid — still against the same single simulation;
4. a scaled inventory variant (``register_iris_variant``) composes a
   heterogeneous estate: a full-size primary site plus a half-size
   Durham-only satellite.

Run with::

    python examples/portfolio_placement.py
"""

from __future__ import annotations

from repro.api import (
    BatchAssessmentRunner,
    INVENTORY_SOURCES,
    SubstrateCache,
    default_spec,
    register_iris_variant,
)
from repro.portfolio import PortfolioMember, PortfolioRunner, PortfolioSpec
from repro.reporting import format_table
from repro.reporting.portfolio import (
    placement_table,
    portfolio_site_table,
    portfolio_summary_table,
)

SCALE = 0.05
REGIONS = ["GB", "FR", "PL"]


def three_region_study(substrates: SubstrateCache) -> None:
    """One deployment, three candidate regions, one simulation."""
    spec = PortfolioSpec.from_regions(
        REGIONS, base_spec=default_spec(node_scale=SCALE),
        load_shares=[0.5, 0.3, 0.2], name="siting-study")
    result = PortfolioRunner(spec, substrates=substrates).run()
    assert substrates.snapshot_runs == 1, "three sites must share one simulation"

    print(portfolio_site_table(result))
    print()
    print(portfolio_summary_table(result))
    print()
    print(placement_table(result, load_kwh=1000.0))
    print()
    print(placement_table(result, load_kwh=1000.0, carbon_aware=True))
    best = result.best_site_for(1000.0, carbon_aware=True)
    print(f"\nNext MWh belongs in {best.name}: "
          f"{best.added_kg_for(1000.0, carbon_aware=True):,.1f} kgCO2e "
          "at clean-hour intensity\n")


def load_migration_sweep(substrates: SubstrateCache) -> None:
    """How placed carbon falls as load migrates GB -> FR (same substrate)."""
    runner = BatchAssessmentRunner(default_spec(node_scale=SCALE),
                                   substrates=substrates)
    steps = [0.0, 0.25, 0.5, 0.75, 1.0]
    batch = runner.sweep_portfolio(
        region=["GB", "FR"],
        load_split=[(1.0 - fr, fr) for fr in steps])
    rows = [
        {
            "fr_share": fr,
            "placed_active_kg": scenario.placed_active_kg,
            "placed_total_kg": scenario.placed_total_kg,
        }
        for fr, scenario in zip(steps, batch.results)
    ]
    print(format_table(
        rows, title="Load migration GB -> FR (placed carbon per split)",
        float_format=",.2f"))
    best = batch.best()
    print(f"\nBest split: {', '.join(f'{m.name}={m.load_share:g}' for m in best.members)}"
          f" -> {best.placed_total_kg:,.1f} kgCO2e placed total")
    # Still one simulation behind the whole region x split grid.
    assert substrates.snapshot_runs == 1
    print(f"(substrate simulations so far: {substrates.snapshot_runs})\n")


def heterogeneous_estate(substrates: SubstrateCache) -> None:
    """Mixed fleet sizes via scaled inventory variants."""
    register_iris_variant("iris-durham-half", sites=("DUR",),
                          node_scale_factor=0.5, overwrite=True)
    try:
        spec = PortfolioSpec(
            name="estate",
            members=(
                PortfolioMember(name="primary", region="GB", load_share=0.7,
                                spec=default_spec(node_scale=SCALE)),
                PortfolioMember(name="dur-satellite", region="NO", load_share=0.3,
                                spec=default_spec(
                                    node_scale=SCALE,
                                    inventory="iris-durham-half")),
            ))
        result = PortfolioRunner(spec, substrates=substrates).run()
        print(portfolio_site_table(result))
        satellite = result.member("dur-satellite")
        print(f"\nSatellite runs {satellite.nodes} nodes on the "
              f"{satellite.region} grid; estate total "
              f"{result.total_kg:,.1f} kgCO2e "
              f"({result.embodied_fraction:.0%} embodied)")
    finally:
        INVENTORY_SOURCES.unregister("iris-durham-half")


def main() -> None:
    substrates = SubstrateCache()
    three_region_study(substrates)
    load_migration_sweep(substrates)
    heterogeneous_estate(substrates)


if __name__ == "__main__":
    main()
