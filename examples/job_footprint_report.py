#!/usr/bin/env python3
"""Per-job carbon footprints: extending the audit to usage questions.

The paper's assessment stops at the infrastructure level — it "does not
consider what the DRI was actually being used for".  This example carries
the audit one step further: it simulates a day of batch load on a site,
evaluates the site's total carbon with the paper's model, and then
attributes that carbon to the individual jobs that ran, producing the
per-job footprint statements a research computing service could hand back
to its users.

Run with::

    python examples/job_footprint_report.py
"""

from __future__ import annotations

import numpy as np

from repro.api import AMORTIZATION_POLICIES, EMBODIED_ESTIMATORS
from repro.core.active import ActiveEnergyInput
from repro.core.attribution import AllocationRule, JobCarbonAttributor
from repro.core.embodied import EmbodiedAsset
from repro.core.model import CarbonModel, SnapshotInputs
from repro.inventory import default_catalog
from repro.power.node_power import NodePowerModel
from repro.power.traces import PowerBreakdownTrace
from repro.reporting import format_table
from repro.units import CarbonIntensity, Duration
from repro.workload import BackfillScheduler, JobGenerator, SimulatedCluster, WorkloadProfile

NODE_COUNT = 32
DURATION_H = 24.0


def main() -> None:
    catalog = default_catalog()
    spec = catalog.node("cpu-compute-standard")

    # --- simulate a day of load --------------------------------------------------
    cluster = SimulatedCluster.homogeneous(NODE_COUNT, spec.total_cores, id_prefix="site")
    profile = WorkloadProfile(target_utilization=0.7, median_runtime_s=2 * 3600.0)
    jobs = JobGenerator(profile, cluster.total_cores, seed=3,
                        max_cores_per_job=spec.total_cores).generate(
        DURATION_H * 3600.0, warmup_s=12 * 3600.0
    )
    scheduler = BackfillScheduler(cluster)
    placements, stats = scheduler.run(jobs, DURATION_H * 3600.0)
    trace = scheduler.build_trace(placements, DURATION_H * 3600.0, step_s=300.0)

    # --- measure energy and evaluate the carbon model ------------------------------
    power = PowerBreakdownTrace.from_utilization(trace, [NodePowerModel(spec)] * NODE_COUNT)
    site_kwh = power.total_energy_kwh("wall")
    period = Duration.from_hours(DURATION_H)
    # Embodied estimator and amortisation policy resolved by name from the
    # assessment API's registries, the same way a spec-driven run would.
    estimator = EMBODIED_ESTIMATORS.create("catalog")
    assets = [
        EmbodiedAsset(asset_id=f"site-{i:03d}", component="nodes",
                      embodied_kgco2=estimator.node_total_kgco2(spec),
                      lifetime_years=5.0)
        for i in range(NODE_COUNT)
    ]
    model = CarbonModel(carbon_intensity=CarbonIntensity.reference_medium(), pue=1.3,
                        amortization=AMORTIZATION_POLICIES.create("linear"))
    total = model.evaluate(SnapshotInputs(
        energy=ActiveEnergyInput(period=period, node_energy_kwh={"site": site_kwh}),
        assets=assets,
    ))
    print(f"Site energy {site_kwh:,.0f} kWh; total carbon {total.total_kg:,.1f} kgCO2e "
          f"(embodied share {total.embodied_fraction:.0%}); "
          f"{stats.jobs_started} jobs, utilisation {trace.mean_utilization():.0%}")
    print()

    # --- attribute to jobs --------------------------------------------------------------
    attributor = JobCarbonAttributor(total.total_kg, DURATION_H,
                                     rule=AllocationRule.CORE_HOURS)
    attribution = attributor.attribute(placements, cores_per_node=spec.total_cores)

    print(format_table(
        [
            {"job": f.job_id, "cores": f.cores,
             "hours in window": f.runtime_hours_in_period,
             "core-hours": f.core_hours, "carbon_kg": f.carbon_kg,
             "gCO2e/core-hour": f.g_co2_per_core_hour}
            for f in attribution.top_emitters(10)
        ],
        title="Top 10 jobs by attributed carbon",
        float_format=",.2f",
    ))
    print()

    shares = np.array([f.carbon_kg for f in attribution.footprints])
    shares.sort()
    top_decile = shares[int(0.9 * len(shares)):].sum() / shares.sum()
    print(f"Fleet average: {attribution.mean_g_per_core_hour:.1f} gCO2e per core-hour.")
    print(f"The top 10% of jobs account for {top_decile:.0%} of the day's footprint —")
    print("per-job reporting shows users where efficiency work pays off, the usage")
    print("dimension the paper leaves for future work.")


if __name__ == "__main__":
    main()
