#!/usr/bin/env python3
"""Probabilistic procurement: distribution specs and the crossover question.

The paper's summary asks when embodied carbon overtakes active carbon —
the moment procurement (what you buy, how long you keep it) matters more
than operation (how cleanly you run it).  This example answers that with
distribution-aware specs:

1. a spec *file* where the uncertain fields hold tagged distribution
   objects — the same flat JSON document as a deterministic spec — is
   written, reloaded and run, showing the round trip the CLI uses
   (``python -m repro uncertainty --spec file.json``);
2. two procurement policies (replace every 3 years vs sweat assets for 7)
   are compared as ensembles sharing one simulated substrate;
3. the crossover probability P(embodied > active) is tracked across grid
   decarbonisation scenarios for both policies.

Run with::

    python examples/probabilistic_procurement.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.api import SubstrateCache, default_spec
from repro.reporting import format_table
from repro.uncertainty import (
    Discrete,
    EnsembleRunner,
    Triangular,
    UncertainSpec,
    Uniform,
)

SCALE = 0.05
SAMPLES = 20_000


def spec_file_round_trip(substrates: SubstrateCache) -> None:
    """Write a distribution-aware spec file, reload it, run the ensemble."""
    document = {
        "node_scale": SCALE,
        "carbon_intensity_g_per_kwh": {
            "dist": "triangular", "low": 50.0, "mode": 175.0, "high": 300.0},
        "pue": {"dist": "triangular", "low": 1.1, "mode": 1.3, "high": 1.5},
        "per_server_kgco2": {"dist": "uniform", "low": 400.0, "high": 1100.0},
        "lifetime_years": {"dist": "discrete", "values": [3, 4, 5, 6, 7]},
    }
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "uncertain_spec.json"
        path.write_text(json.dumps(document, indent=2), encoding="utf-8")
        spec = UncertainSpec.from_json(path)
        result = EnsembleRunner(spec, substrates=substrates).run(
            n_samples=SAMPLES, seed=0)
    quantiles = result.quantiles("total_kg")
    print("Spec-file ensemble (the CLI's path):")
    print(f"  fields: {', '.join(result.fields)}")
    print(f"  total kgCO2e p05/p50/p95 = {quantiles['p05']:,.0f} / "
          f"{quantiles['p50']:,.0f} / {quantiles['p95']:,.0f}")
    print(f"  P(embodied > active) = "
          f"{result.probability_embodied_exceeds_active:.3f}")
    print()


def procurement_policies(substrates: SubstrateCache) -> None:
    """Churn-and-replace vs sweat-the-assets, as competing ensembles."""
    base = default_spec(node_scale=SCALE)
    shared = {
        "carbon_intensity_g_per_kwh": Triangular(50.0, 175.0, 300.0),
        "pue": Triangular(1.1, 1.3, 1.5),
    }
    policies = {
        # Frequent refresh: young fleet, high embodied churn; vendors'
        # newer nodes also carry a wider manufacturing-footprint spread.
        "replace every 3 years": {
            **shared,
            "per_server_kgco2": Uniform(600.0, 1100.0),
            "lifetime_years": Discrete((3.0,)),
        },
        # Sweat the assets: the same hardware amortised over 7 years.
        "sweat assets 7 years": {
            **shared,
            "per_server_kgco2": Uniform(600.0, 1100.0),
            "lifetime_years": Discrete((7.0,)),
        },
    }
    rows = []
    for label, distributions in policies.items():
        result = EnsembleRunner(base, distributions,
                                substrates=substrates).run(
            n_samples=SAMPLES, seed=11)
        quantiles = result.quantiles("total_kg")
        rows.append({
            "policy": label,
            "total p05": quantiles["p05"],
            "total p50": quantiles["p50"],
            "total p95": quantiles["p95"],
            "embodied share": result.mean("embodied_fraction"),
            "P(emb > act)": result.probability_embodied_exceeds_active,
        })
    print(format_table(rows, title="Procurement policies under uncertainty "
                                   "(24-hour snapshot, kgCO2e)",
                       float_format=",.3f"))
    print()


def crossover_by_grid(substrates: SubstrateCache) -> None:
    """When does procurement start to dominate?  Sweep the grid scenario."""
    base = default_spec(node_scale=SCALE)
    grids = {
        "2022 (paper)": Triangular(50.0, 175.0, 300.0),
        "2030-ish": Triangular(15.0, 80.0, 160.0),
        "2035-ish": Triangular(5.0, 40.0, 90.0),
        "near-zero": Triangular(0.1, 10.0, 25.0),
    }
    lifetimes = {"3-year refresh": 3.0, "7-year sweating": 7.0}
    rows = []
    for grid_label, intensity in grids.items():
        row = {"grid": grid_label}
        for policy_label, lifetime in lifetimes.items():
            result = EnsembleRunner(base, {
                "carbon_intensity_g_per_kwh": intensity,
                "pue": Triangular(1.1, 1.3, 1.5),
                "per_server_kgco2": Uniform(400.0, 1100.0),
                "lifetime_years": Discrete((lifetime,)),
            }, substrates=substrates).run(n_samples=SAMPLES, seed=23)
            row[policy_label] = result.probability_embodied_exceeds_active
        rows.append(row)
    print(format_table(rows,
                       title="P(embodied > active) by grid scenario and "
                             "procurement policy",
                       float_format=",.3f"))
    print()
    print("On today's grid the crossover is unlikely either way; as the grid")
    print("decarbonises it becomes near-certain for a 3-year refresh cycle —")
    print("lifetime extension is the lever that keeps it at bay.")


def main() -> None:
    substrates = SubstrateCache()
    spec_file_round_trip(substrates)
    procurement_policies(substrates)
    crossover_by_grid(substrates)
    print(f"(Every ensemble above shared one simulation: "
          f"snapshot_runs = {substrates.snapshot_runs}.)")


if __name__ == "__main__":
    main()
