#!/usr/bin/env python3
"""Quickstart: audit a small research-computing site end to end.

This example walks through the whole pipeline on a deliberately small,
fictional site so it runs in a couple of seconds:

1. describe the hardware (a rack of compute nodes and a storage server);
2. simulate a day of batch workload on it;
3. measure its energy with the simulated instruments (IPMI + PDU);
4. convert the energy to carbon with the paper's model (equation 1):
   active carbon from the measured energy, grid intensity and PUE, plus
   embodied carbon amortised over the hardware lifetime;
5. print the audit report with everyday-equivalent comparisons.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    Carbon,
    CarbonIntensity,
    CarbonModel,
    SnapshotInputs,
)
from repro.core.active import ActiveEnergyInput
from repro.core.embodied import EmbodiedAsset
from repro.embodied import BottomUpEstimator
from repro.inventory import default_catalog
from repro.power.campaign import MeasurementCampaign
from repro.power.instruments import IPMIMeter, PDUMeter
from repro.power.node_power import NodePowerModel
from repro.power.traces import PowerBreakdownTrace
from repro.reporting import AuditReport
from repro.units import Duration
from repro.workload import BackfillScheduler, JobGenerator, SimulatedCluster, WorkloadProfile


def main() -> None:
    catalog = default_catalog()
    compute_spec = catalog.node("cpu-compute-standard")
    storage_spec = catalog.node("storage-server")

    # --- 1. the site: 16 compute nodes and 2 storage servers ----------------
    node_specs = [compute_spec] * 16 + [storage_spec] * 2
    node_ids = [f"quick-{i:02d}" for i in range(len(node_specs))]

    # --- 2. a day of batch workload ------------------------------------------
    cluster = SimulatedCluster.homogeneous(len(node_specs), compute_spec.total_cores,
                                           id_prefix="quick")
    profile = WorkloadProfile(target_utilization=0.65)
    jobs = JobGenerator(profile, cluster.total_cores, seed=1,
                        max_cores_per_job=compute_spec.total_cores).generate(
        duration_s=24 * 3600.0, warmup_s=12 * 3600.0
    )
    scheduler = BackfillScheduler(cluster)
    utilization, stats = scheduler.simulate(jobs, duration_s=24 * 3600.0, step_s=300.0)
    print(f"Scheduled {stats.jobs_started} jobs; "
          f"mean cluster utilisation {utilization.mean_utilization():.0%}")

    # --- 3. measure the energy ------------------------------------------------
    models = [NodePowerModel(spec) for spec in node_specs]
    # Use the real node ids on the power trace for the report.
    power = PowerBreakdownTrace.from_utilization(utilization, models[: utilization.node_count])
    campaign = MeasurementCampaign({"ipmi": IPMIMeter(), "pdu": PDUMeter()}, seed=7)
    report = campaign.measure_site("quickstart-site", power, network_power_w=300.0)
    measured_kwh = report.best_estimate_kwh
    print(f"Measured energy over 24 h: {measured_kwh:,.0f} kWh "
          f"(IPMI {report.readings['ipmi'].energy_kwh:,.0f} kWh, "
          f"PDU {report.readings['pdu'].energy_kwh:,.0f} kWh)")

    # --- 4. the carbon model ---------------------------------------------------
    period = Duration.from_hours(24)
    energy_input = ActiveEnergyInput(period=period,
                                     node_energy_kwh={"quickstart-site": measured_kwh})
    estimator = BottomUpEstimator()
    assets = [
        EmbodiedAsset(
            asset_id=node_ids[i],
            component="nodes",
            embodied_kgco2=estimator.node_total_kgco2(spec),
            lifetime_years=5.0,
        )
        for i, spec in enumerate(node_specs)
    ]
    model = CarbonModel(carbon_intensity=CarbonIntensity.reference_medium(), pue=1.3)
    result = model.evaluate(SnapshotInputs(energy=energy_input, assets=assets))

    # --- 5. report --------------------------------------------------------------
    audit = AuditReport(title="Quickstart site - 24 hour carbon audit")
    audit.add_key_values("Measured energy", {
        "ipmi_kwh": report.readings["ipmi"].energy_kwh,
        "pdu_kwh": report.readings["pdu"].energy_kwh,
        "best_estimate_kwh": measured_kwh,
    })
    audit.add_total_result("Carbon model (medium intensity, PUE 1.3)", result)
    audit.add_equivalences("In everyday terms", Carbon.from_kg(result.total_kg))
    print()
    print(audit.render())


if __name__ == "__main__":
    main()
