#!/usr/bin/env python3
"""Quickstart: the unified assessment pipeline in five minutes.

Everything the paper's audit does — build the inventory, simulate and
measure a day of workload, price the energy against a grid, amortise the
embodied carbon, report — is behind one front door: the ``Assessment``
façade, configured by a declarative ``AssessmentSpec``.  This example shows

1. the one-liner: run the paper's snapshot (at 5% fleet scale, so it takes
   a fraction of a second) and read the headline numbers;
2. fluent scenario variants — each ``with_*`` builder returns a new
   assessment, and variants sharing a physical configuration reuse the
   same cached simulation instead of re-running it;
3. specs as data: JSON round-trip for sharing and automation;
4. the extension seam: registering a custom grid provider by name and
   assessing against it without touching any core code.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import Assessment, AssessmentSpec, default_spec, register_grid_provider
from repro.grid.synthetic import SyntheticGridModel

SCALE = 0.05  # 5% of the IRIS fleet: same per-node behaviour, much faster


def main() -> None:
    # --- 1. the one-liner -------------------------------------------------------
    result = Assessment.from_spec(default_spec(node_scale=SCALE)).run()
    print(f"Measured energy: {result.energy_kwh:,.0f} kWh over "
          f"{result.spec.duration_hours:.0f} h on {result.snapshot.total_nodes} nodes")
    print(f"Total carbon:    {result.total_kg:,.1f} kgCO2e "
          f"(active {result.active_kg:,.1f}, embodied {result.embodied_kg:,.1f}, "
          f"embodied share {result.embodied_fraction:.0%})")
    print()

    # --- 2. fluent scenario variants (the simulation is reused, not re-run) ------
    base = Assessment.from_spec(default_spec(node_scale=SCALE))
    scenarios = {
        "paper defaults (175 g, PUE 1.3)": base,
        "clean grid (50 g, PUE 1.1)": base.with_grid(50.0).with_pue(1.1),
        "dirty grid (300 g, PUE 1.5)": base.with_grid(300.0).with_pue(1.5),
        "7-year hardware life": base.with_embodied(lifetime_years=7.0),
    }
    for label, assessment in scenarios.items():
        scenario = assessment.run()
        print(f"{label:35s} total {scenario.total_kg:8,.1f} kgCO2e "
              f"(embodied {scenario.embodied_fraction:.0%})")
    print()

    # --- 3. specs are data --------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        spec_path = Path(tmp) / "assessment.json"
        base.spec.to_json(spec_path)
        reloaded = AssessmentSpec.from_json(spec_path)
        assert reloaded == base.spec
        print(f"Spec round-tripped through {spec_path.name}: "
              f"{len(spec_path.read_text().splitlines())} lines of JSON "
              "(try `python -m repro assess --spec <file>`)")
    print()

    # --- 4. plug in a backend by name ----------------------------------------------
    @register_grid_provider("quickstart-windy", overwrite=True)
    def windy_grid(days: float = 30.0):
        """A fictional very windy region: the GB model with doubled wind."""
        return SyntheticGridModel(wind_mean_share=0.55,
                                  wind_share_max=0.85).generate_intensity(days=days)

    windy = base.with_grid("quickstart-windy").run()
    print("On the custom 'quickstart-windy' grid "
          f"({windy.spec.carbon_intensity_g_per_kwh:.0f} gCO2e/kWh medium "
          f"reference): total {windy.total_kg:,.1f} kgCO2e")
    print()

    # --- and the full report is one call away ---------------------------------------
    print(result.report(title="Quickstart - IRIS snapshot at 5% scale").render())


if __name__ == "__main__":
    main()
