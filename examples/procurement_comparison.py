#!/usr/bin/env python3
"""Procurement comparison: which cluster design has the lowest total footprint?

The IRISCAST project's stated goal is to let "future decision making about
computing resource procurement and operation incorporate potential climate
impacts".  This example uses the carbon model to compare four ways of
provisioning the same scientific capability (a fixed number of delivered
core-hours per year):

* **baseline** — standard dual-socket nodes, 4-year refresh, hosted on the
  GB grid at PUE 1.3;
* **longer life** — the same nodes kept for 7 years;
* **fewer, denser nodes** — large-memory 96-core nodes (fewer chassis, more
  embodied carbon each, better energy per core-hour);
* **low-carbon siting** — the baseline hardware hosted in a hydro-dominated
  region at PUE 1.1.

For each option the script reports the annual active, embodied and total
carbon, and the carbon per delivered core-hour.

Run with::

    python examples/procurement_comparison.py
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import EMBODIED_ESTIMATORS
from repro.core.active import ActiveEnergyInput
from repro.core.embodied import EmbodiedAsset
from repro.core.model import CarbonModel, SnapshotInputs
from repro.grid import default_regions
from repro.inventory import default_catalog
from repro.power.node_power import NodePowerModel
from repro.reporting import format_table
from repro.units import Duration

#: Scientific demand to satisfy: delivered core-hours per year.
REQUIRED_CORE_HOURS_PER_YEAR = 25_000_000.0

#: Sustained utilisation the operators expect to achieve.
ASSUMED_UTILIZATION = 0.7


@dataclass(frozen=True)
class ProcurementOption:
    """One way of provisioning the required capability."""

    name: str
    node_model: str
    lifetime_years: float
    pue: float
    grid_region: str


OPTIONS = [
    ProcurementOption("baseline (4y, GB grid)", "cpu-compute-standard", 4.0, 1.3, "GB"),
    ProcurementOption("longer life (7y, GB grid)", "cpu-compute-standard", 7.0, 1.3, "GB"),
    ProcurementOption("denser nodes (4y, GB grid)", "cpu-compute-highmem", 4.0, 1.3, "GB"),
    ProcurementOption("low-carbon siting (4y, NO grid)", "cpu-compute-standard", 4.0, 1.1, "NO"),
]


def evaluate_option(option: ProcurementOption) -> dict:
    """Annual carbon budget of one procurement option."""
    catalog = default_catalog()
    regions = default_regions()
    spec = catalog.node(option.node_model)
    power_model = NodePowerModel(spec)
    # The pure component model (no datasheet short-circuit), resolved from
    # the assessment API's registry like any other pluggable backend.
    estimator = EMBODIED_ESTIMATORS.create("bottom-up-components")

    # Size the fleet for the required core-hours at the assumed utilisation.
    core_hours_per_node_year = spec.total_cores * 8760.0 * ASSUMED_UTILIZATION
    node_count = int(round(REQUIRED_CORE_HOURS_PER_YEAR / core_hours_per_node_year + 0.5))

    # Active energy: every node at the assumed utilisation, all year.
    node_kwh_year = power_model.energy_kwh(ASSUMED_UTILIZATION, 8760.0)
    it_kwh_year = node_kwh_year * node_count
    intensity = regions.get(option.grid_region).average_intensity()

    period = Duration.from_days(365.0)
    energy = ActiveEnergyInput(period=period, node_energy_kwh={"fleet": it_kwh_year})
    assets = [
        EmbodiedAsset(
            asset_id=f"{option.name}-{i}",
            component="nodes",
            embodied_kgco2=estimator.node_total_kgco2(spec),
            lifetime_years=option.lifetime_years,
        )
        for i in range(node_count)
    ]
    model = CarbonModel(carbon_intensity=intensity, pue=option.pue)
    result = model.evaluate(SnapshotInputs(energy=energy, assets=assets))

    delivered = node_count * core_hours_per_node_year
    return {
        "option": option.name,
        "nodes": node_count,
        "it_mwh_per_year": it_kwh_year / 1000.0,
        "active_tCO2": result.active.total_kg / 1000.0,
        "embodied_tCO2": result.embodied.total_kg / 1000.0,
        "total_tCO2": result.total_kg / 1000.0,
        "gCO2_per_core_hour": result.total_kg * 1000.0 / delivered,
        "embodied_share": result.embodied_fraction,
    }


def main() -> None:
    rows = [evaluate_option(option) for option in OPTIONS]
    print(format_table(
        rows,
        title=(f"Provisioning {REQUIRED_CORE_HOURS_PER_YEAR / 1e6:.0f}M core-hours/year "
               f"at {ASSUMED_UTILIZATION:.0%} utilisation"),
        float_format=",.2f",
    ))
    print()

    baseline, longer, denser, sited = rows
    print("Observations")
    print("------------")
    print("* Keeping hardware 7 years instead of 4 cuts embodied carbon by "
          f"{(1 - longer['embodied_tCO2'] / baseline['embodied_tCO2']):.0%} "
          "with no change to active carbon.")
    print("* Low-carbon siting cuts the total by "
          f"{(1 - sited['total_tCO2'] / baseline['total_tCO2']):.0%}, after which the "
          f"embodied share rises to {sited['embodied_share']:.0%} — the paper's point "
          "that embodied carbon dominates once the grid decarbonises.")
    print("* Denser nodes change the balance between chassis count and per-node "
          f"power; here they deliver {denser['gCO2_per_core_hour']:.1f} gCO2e per "
          f"core-hour vs {baseline['gCO2_per_core_hour']:.1f} for the baseline.")


if __name__ == "__main__":
    main()
