#!/usr/bin/env python3
"""Time-resolved carbon accounting with the temporal assessment engine.

The snapshot pipeline prices the window's total energy with one
period-average intensity; the temporal engine aligns the facility's power
trace with the grid's half-hourly intensity trace and integrates energy ×
intensity per interval.  This walkthrough:

1. runs the paper's snapshot (at 5% fleet scale) through
   ``TemporalAssessment`` against the synthetic GB November-2022 grid;
2. compares time-resolved and period-average accounting of the same trace
   (the temporal correction);
3. sweeps the carbon-aware levers — time-shifting, load deferral and
   region shifting — through ``BatchAssessmentRunner.sweep_temporal``,
   reusing one cached simulation for every scenario;
4. prints the per-day and per-intensity-band breakdowns the reporting
   layer renders for audit reports.

Run with::

    python examples/temporal_carbon_accounting.py
"""

from __future__ import annotations

from repro.api import (
    BatchAssessmentRunner,
    SubstrateCache,
    TemporalAssessment,
    default_spec,
)
from repro.reporting import format_kv_table, format_table
from repro.reporting.temporal import (
    carbon_rate_chart,
    daily_emission_rows,
    intensity_band_rows,
)

SCALE = 0.05  # 5% fleet: sub-second simulation, same per-node physics


def main() -> None:
    cache = SubstrateCache()
    spec = default_spec(node_scale=SCALE).replace(carbon_intensity_g_per_kwh=None)

    # -- 1/2: time-resolved vs period-average ---------------------------------
    result = (TemporalAssessment.from_spec(spec, substrates=cache)
              .with_grid("uk-november-2022")
              .run())
    print(carbon_rate_chart(result.profile))
    print()
    print(format_kv_table({
        "facility energy kWh": result.energy_kwh,
        "time-average intensity g/kWh": result.profile.mean_intensity_g_per_kwh,
        "experienced intensity g/kWh": result.experienced_intensity_g_per_kwh,
        "time-resolved active kgCO2e": result.active_kg,
        "period-average active kgCO2e": result.window_average_active_kg,
        "temporal correction kgCO2e": result.temporal_correction_kg,
    }, title="Time-resolved vs period-average accounting", float_format=",.2f"))
    print()

    # -- 3: carbon-aware scenario sweep ---------------------------------------
    runner = BatchAssessmentRunner(spec, substrates=cache)
    sweep = runner.sweep_temporal(
        grid=["region-GB", "region-FR"],
        shift_hours=[0.0, 6.0],
        defer_fraction=[0.0, 0.3],
    )
    print(format_table(
        sweep.as_rows(),
        columns=["grid", "shift_hours", "defer_fraction",
                 "experienced_intensity_g_per_kwh", "active_kg", "savings_kg"],
        title="Carbon-aware scenarios (one cached simulation for all eight)",
        float_format=",.2f"))
    best = sweep.best()
    print(f"\nBest scenario: grid={best.spec.grid}, "
          f"shift={best.spec.shift_hours:+.0f} h, "
          f"defer={best.spec.defer_fraction:.0%} -> "
          f"{best.active_kg:,.1f} kgCO2e active "
          f"({best.savings_kg:,.1f} kg saved vs its own baseline)")
    print(f"Simulations run for {len(sweep)} scenarios: {cache.snapshot_runs}")
    print()

    # -- 4: report breakdowns ---------------------------------------------------
    print(format_table(
        daily_emission_rows(result.profile),
        title="Per-day emissions", float_format=",.2f"))
    print()
    print(format_table(
        intensity_band_rows(result.profile),
        title="Carbon by grid-intensity band", float_format=",.3f"))


if __name__ == "__main__":
    main()
