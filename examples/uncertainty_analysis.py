#!/usr/bin/env python3
"""Uncertainty analysis: turning the paper's scenario corners into a distribution.

Tables 3 and 4 of the paper bound the snapshot's impact with a handful of
scenario corners.  This example treats the same inputs as distributions
(triangular grid intensity and PUE, uniform per-server embodied carbon,
discrete lifetimes) and propagates them through the model with Monte Carlo,
answering questions the corner tables cannot:

* what is the *likely* total, not just its extreme bounds?
* how probable is it that embodied carbon exceeds active carbon today?
* how does that probability change as the grid decarbonises?

Run with::

    python examples/uncertainty_analysis.py
"""

from __future__ import annotations

from repro.api import BatchAssessmentRunner, default_spec
from repro.core.uncertainty import MonteCarloCarbonModel, UncertainInput
from repro.inventory.iris import IRIS_IMPLIED_SERVER_COUNT, PAPER_TABLE2_TOTAL_KWH
from repro.reporting import format_table
from repro.reporting.figures import ascii_histogram

SAMPLES = 50_000


def scenario_corners() -> None:
    """The deterministic corner sweep the distributions generalise.

    One simulated snapshot (cached by the batch runner's substrate cache)
    re-evaluated over the paper's 3 x 3 intensity x PUE grid.
    """
    batch = BatchAssessmentRunner(default_spec(node_scale=0.05)).sweep(
        intensity=[50.0, 175.0, 300.0],
        pue=[1.1, 1.3, 1.5],
    )
    print("Deterministic corners (simulated snapshot at 5% scale, "
          f"{len(batch)} scenarios, one simulation): "
          f"{batch.min_total_kg:,.0f} - {batch.max_total_kg:,.0f} kgCO2e")
    print()


def main() -> None:
    scenario_corners()
    model = MonteCarloCarbonModel(
        it_energy_kwh=PAPER_TABLE2_TOTAL_KWH,
        server_count=IRIS_IMPLIED_SERVER_COUNT,
    )
    result = model.run(n_samples=SAMPLES, seed=2022)
    draws = model.sample(n_samples=SAMPLES, seed=2022)

    print(format_table(
        [
            {"quantity": "total kgCO2e (mean)", "value": result.total_kg_mean},
            {"quantity": "total kgCO2e (5th pct)", "value": result.total_kg_p5},
            {"quantity": "total kgCO2e (median)", "value": result.total_kg_p50},
            {"quantity": "total kgCO2e (95th pct)", "value": result.total_kg_p95},
            {"quantity": "active kgCO2e (mean)", "value": result.active_kg_mean},
            {"quantity": "embodied kgCO2e (mean)", "value": result.embodied_kg_mean},
            {"quantity": "embodied share (mean)", "value": result.embodied_fraction_mean},
            {"quantity": "P(embodied > active)", "value": result.probability_embodied_exceeds_active},
        ],
        title=f"IRIS 24-hour snapshot, {SAMPLES:,} Monte-Carlo samples",
        float_format=",.3f",
    ))
    print()
    print(ascii_histogram(draws["total_kg"], bins=12, width=48,
                          title="Distribution of the snapshot total (kgCO2e)"))
    print()

    # How the embodied/active balance shifts as the grid decarbonises.
    rows = []
    for label, (low, mode, high) in {
        "2022 grid (paper)": (50.0, 175.0, 300.0),
        "2030-ish grid": (15.0, 80.0, 160.0),
        "2035-ish grid": (5.0, 40.0, 90.0),
        "near-zero grid": (0.0, 10.0, 25.0),
    }.items():
        scenario = MonteCarloCarbonModel(
            it_energy_kwh=PAPER_TABLE2_TOTAL_KWH,
            server_count=IRIS_IMPLIED_SERVER_COUNT,
            inputs=UncertainInput(intensity_low=low, intensity_mode=mode,
                                  intensity_high=high),
        ).run(n_samples=20_000, seed=7)
        rows.append({
            "grid scenario": label,
            "mean total kg": scenario.total_kg_mean,
            "embodied share": scenario.embodied_fraction_mean,
            "P(embodied > active)": scenario.probability_embodied_exceeds_active,
        })
    print(format_table(rows, title="The crossover the paper anticipates",
                       float_format=",.3f"))
    print()
    print("As generation decarbonises, the embodied share grows until it dominates —")
    print("the paper's argument for shifting attention to manufacturing emissions.")


if __name__ == "__main__":
    main()
