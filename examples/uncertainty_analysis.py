#!/usr/bin/env python3
"""Uncertainty analysis: turning the paper's scenario corners into distributions.

Tables 3 and 4 of the paper bound the snapshot's impact with a handful of
scenario corners.  This example runs the vectorized uncertainty engine
instead: the input corners become distributions attached to the assessment
spec, a seeded ensemble pushes 50,000 joint scenarios through the analysis
stage in one columnar pass — the fleet is simulated exactly once — and the
result answers questions the corner tables cannot:

* what is the *likely* total, not just its extreme bounds?
* how probable is it that embodied carbon exceeds active carbon today?
* which input's uncertainty actually drives the answer (sensitivity)?
* how does the balance change as the grid decarbonises?

Run with::

    python examples/uncertainty_analysis.py
"""

from __future__ import annotations

from repro.api import BatchAssessmentRunner, SubstrateCache, default_spec
from repro.reporting import format_table
from repro.reporting.uncertainty import (
    ensemble_histogram,
    ensemble_quantile_table,
    sensitivity_table,
)
from repro.uncertainty import EnsembleRunner, Triangular

SCALE = 0.05
SAMPLES = 50_000
SEED = 2022


def scenario_corners(substrates: SubstrateCache) -> None:
    """The deterministic corner sweep the distributions generalise.

    One simulated snapshot (shared with every ensemble below through the
    substrate cache) re-evaluated over the paper's 3 x 3 intensity x PUE
    grid.
    """
    batch = BatchAssessmentRunner(default_spec(node_scale=SCALE),
                                  substrates=substrates).sweep(
        intensity=[50.0, 175.0, 300.0],
        pue=[1.1, 1.3, 1.5],
    )
    print(f"Deterministic corners (simulated snapshot at {SCALE:.0%} scale, "
          f"{len(batch)} scenarios, one simulation): "
          f"{batch.min_total_kg:,.0f} - {batch.max_total_kg:,.0f} kgCO2e")
    print()


def main() -> None:
    substrates = SubstrateCache()
    scenario_corners(substrates)

    # The paper's input envelope is the default distribution set: triangular
    # intensity and PUE over the Low/Medium/High corners, uniform per-server
    # embodied carbon, discrete 3-7-year lifetimes.
    runner = EnsembleRunner(default_spec(node_scale=SCALE),
                            substrates=substrates)
    result = runner.run(n_samples=SAMPLES, seed=SEED)
    print(f"{SAMPLES:,} joint scenarios over {', '.join(result.fields)} "
          f"({result.method}; substrate simulated "
          f"{substrates.snapshot_runs} time)")
    print()
    print(ensemble_quantile_table(result))
    print()
    print(f"P(embodied > active) = "
          f"{result.probability_embodied_exceeds_active:.3f}")
    print()
    print(ensemble_histogram(result, bins=12, width=48))
    print()

    # Which input uncertainty matters? One-at-a-time variance ranking.
    print(sensitivity_table(runner.sensitivity(n_samples=8192, seed=SEED)))
    print()

    # How the embodied/active balance shifts as the grid decarbonises: the
    # same spec, the intensity distribution swapped per scenario.  Every
    # ensemble reuses the one cached simulation.
    rows = []
    for label, (low, mode, high) in {
        "2022 grid (paper)": (50.0, 175.0, 300.0),
        "2030-ish grid": (15.0, 80.0, 160.0),
        "2035-ish grid": (5.0, 40.0, 90.0),
        "near-zero grid": (0.1, 10.0, 25.0),
    }.items():
        scenario = EnsembleRunner(
            default_spec(node_scale=SCALE),
            {**runner.spec.distributions,
             "carbon_intensity_g_per_kwh": Triangular(low, mode, high)},
            substrates=substrates,
        ).run(n_samples=20_000, seed=7)
        rows.append({
            "grid scenario": label,
            "mean total kg": scenario.mean("total_kg"),
            "embodied share": scenario.mean("embodied_fraction"),
            "P(embodied > active)":
                scenario.probability_embodied_exceeds_active,
        })
    print(format_table(rows, title="The crossover the paper anticipates",
                       float_format=",.3f"))
    print()
    print(f"(Total simulations across all ensembles: "
          f"{substrates.snapshot_runs}.)")
    print()
    print("As generation decarbonises, the embodied share grows until it dominates —")
    print("the paper's argument for shifting attention to manufacturing emissions.")


if __name__ == "__main__":
    main()
