#!/usr/bin/env python3
"""Round-trip client for the assessment server (``repro serve``).

Starts an in-process server on an ephemeral port, then speaks plain HTTP
to it — the same wire protocol any deployment sees — demonstrating

1. the health probe and the stats document;
2. an assessment request, and a concurrent burst of scenario variants
   that coalesce onto a single simulation (watch ``snapshot_runs``);
3. catalog read-through: the same spec posted again is answered from the
   run catalog, byte-identical, with zero new simulations.

Run with::

    python examples/serve_client.py

Against a server you started yourself (``repro serve --port 8035
--catalog runs.db``), point ``BASE`` at it and delete the embedded-server
scaffolding — the request code is unchanged.
"""

from __future__ import annotations

import asyncio
import json
import tempfile
import threading
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.serve import ReproServer, ServeApp, ServeConfig

SCALE = 0.05  # 5% of the IRIS fleet: same per-node behaviour, much faster
BURST = 6     # concurrent scenario variants in step 2


def get(base: str, path: str) -> dict:
    with urllib.request.urlopen(f"{base}{path}") as response:
        return json.load(response)


def post(base: str, path: str, doc: dict) -> tuple[dict, str]:
    """POST a JSON document; returns (payload, served-from header)."""
    request = urllib.request.Request(
        f"{base}{path}", data=json.dumps(doc).encode(), method="POST",
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request) as response:
        return json.load(response), response.headers["X-Repro-Source"]


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        app = ServeApp(ServeConfig(
            port=0, workers=BURST, catalog=Path(tmp) / "runs.db"))
        server = ReproServer(app)
        loop = asyncio.new_event_loop()
        threading.Thread(target=loop.run_forever, daemon=True).start()
        asyncio.run_coroutine_threadsafe(server.start(), loop).result(10)
        base = server.address
        print(f"serving on {base}\n")

        # --- 1. health and stats ------------------------------------------------
        print("healthz:", get(base, "/healthz"))
        stats = get(base, "/stats")
        print(f"capacity: {stats['server']['capacity']} "
              f"({stats['server']['workers']} workers + "
              f"{stats['server']['queue_limit']} queued)\n")

        # --- 2. one request, then a coalescing burst ----------------------------
        doc = {"node_scale": SCALE}
        payload, source = post(base, "/assess", doc)
        print(f"assess ({source}): total "
              f"{payload['summary']['total_kg']:,.1f} kgCO2e")

        variants = [dict(doc, pue=1.15 + 0.1 * i) for i in range(BURST)]
        with ThreadPoolExecutor(max_workers=BURST) as pool:
            burst = list(pool.map(
                lambda d: post(base, "/assess", d), variants))
        totals = [p["summary"]["total_kg"] for p, _ in burst]
        runs = get(base, "/stats")["substrates"]["snapshot_runs"]
        print(f"{BURST} concurrent scenario variants -> {len(set(totals))} "
              f"distinct answers from {runs} simulation(s) total\n")

        # --- 3. catalog read-through --------------------------------------------
        repeat, source = post(base, "/assess", doc)
        identical = json.dumps(repeat, sort_keys=True) == json.dumps(
            payload, sort_keys=True)
        print(f"repeat of the first spec served from: {source} "
              f"(identical payload: {identical})")
        served = get(base, "/stats")["requests"]["served_from_catalog"]
        print(f"requests served from the catalog so far: {served}")

        clean = asyncio.run_coroutine_threadsafe(
            server.shutdown(10), loop).result(30)
        loop.call_soon_threadsafe(loop.stop)
        print(f"\nshutdown clean: {clean}")


if __name__ == "__main__":
    main()
