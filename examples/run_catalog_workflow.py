#!/usr/bin/env python3
"""The run catalog as a lab notebook: record, query, replay, diff.

A realistic small workflow on top of ``repro.catalog``:

1. record a tagged PUE sweep of the 2%-scale fleet into a catalog —
   every run content-addressed, re-records of identical runs are no-ops;
2. query it back (by tag, by spec field) like a notebook index;
3. replay one spec and watch it get *served* — zero simulation,
   bit-identical to the recorded answer;
4. diff two scenarios to see exactly which tables moved and by how much,
   plus the conservation audit that runs on every diff;
5. export one run as a portable JSON document — the golden-baseline form
   that can be committed to git and re-imported anywhere.

Run with::

    python examples/run_catalog_workflow.py
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from repro.api import Assessment, BatchAssessmentRunner, default_spec
from repro.catalog import CatalogRecorder, RunCatalog, diff_runs
from repro.reporting import format_table
from repro.reporting.runs import drift_table, runs_table

SCALE = 0.02
PUES = (1.1, 1.3, 1.6)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        catalog_path = Path(tmp) / "runs.db"
        with RunCatalog(catalog_path) as catalog:
            record_sweep(catalog)
            query(catalog)
            replay(catalog)
            drift(catalog)
            export(catalog)


def record_sweep(catalog: RunCatalog) -> None:
    print("=== 1. record a tagged PUE sweep " + "=" * 30)
    recorder = CatalogRecorder(catalog, tags=("pue-sweep",))
    runner = BatchAssessmentRunner(default_spec(node_scale=SCALE),
                                   catalog=recorder)
    batch = runner.sweep(pue=list(PUES))
    print(format_table(
        [{"pue": pue, "total_kg": round(result.total_kg, 3)}
         for pue, result in zip(PUES, batch)],
        title=f"PUE sweep at {SCALE:.0%} fleet scale"))
    print(f"catalogued runs: {catalog.count()}")

    # Identical sweep again: every run is already catalogued, nothing new
    # is recorded (content addressing makes re-records no-ops).
    runner.sweep(pue=list(PUES))
    print(f"after an identical sweep: still {catalog.count()} runs\n")


def query(catalog: RunCatalog) -> None:
    print("=== 2. query the catalog " + "=" * 38)
    print(runs_table(catalog.find(tag="pue-sweep"),
                     title="runs tagged pue-sweep"))
    worst = catalog.find(where={"pue": max(PUES)})
    print(f"\nruns with pue={max(PUES)}: "
          f"{[record.short_id for record in worst]}\n")


def replay(catalog: RunCatalog) -> None:
    print("=== 3. replay a catalogued spec " + "=" * 31)
    spec = default_spec(node_scale=SCALE, pue=PUES[0])
    start = time.perf_counter()
    served = Assessment.from_spec(spec, catalog=catalog).run()
    elapsed_ms = (time.perf_counter() - start) * 1e3
    assert served.served_from_catalog
    print(f"served from catalog in {elapsed_ms:.1f} ms "
          f"(recorded run took "
          f"{catalog.get(served.run_id).duration_s * 1e3:.0f} ms): "
          f"total = {served.total_kg:.3f} kgCO2e\n")


def drift(catalog: RunCatalog) -> None:
    print("=== 4. diff two scenarios " + "=" * 37)
    best, worst = (catalog.latest(
        kind="assess",
        spec_digest=catalog.find(where={"pue": pue})[0].spec_digest)
        for pue in (min(PUES), max(PUES)))
    diff = diff_runs(best.run_id, worst.run_id, catalog=catalog)
    print(drift_table(diff))
    print(f"\n{len(diff.findings)} findings across "
          f"{sorted(diff.by_table())}; conservation audits clean: "
          f"{not any(f.category == 'conservation' for f in diff.findings)}\n")


def export(catalog: RunCatalog) -> None:
    print("=== 5. export a portable run document " + "=" * 25)
    record = catalog.runs()[0]
    document = catalog.export_run(record.run_id)
    print(f"run {record.short_id}: {len(json.dumps(document)):,} bytes of "
          f"portable JSON (kind={document['kind']}, "
          f"{sorted(document['payload'])})")
    # Round trip into a second catalog; a tampered document would refuse.
    with tempfile.TemporaryDirectory() as tmp:
        with RunCatalog(Path(tmp) / "imported.db") as other:
            assert other.import_run(document) == record.run_id
            print(f"re-imported into a fresh catalog as "
                  f"{other.runs()[0].short_id} — identity verified")


if __name__ == "__main__":
    main()
