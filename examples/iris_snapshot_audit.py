#!/usr/bin/env python3
"""Reproduce the IRISCAST 24-hour snapshot audit (the paper's evaluation).

Runs the full pipeline exactly as the benchmarks do — the six IRIS sites,
the per-site measurement methods of Table 2, the scenario grids of Tables 3
and 4 and the summary comparison — and prints each regenerated table next to
the values published in the paper.

By default the simulation uses the full 2,462-node fleet (a few seconds);
pass ``--scale 0.1`` to run a proportionally smaller fleet that preserves
per-node behaviour.

Run with::

    python examples/iris_snapshot_audit.py [--scale 1.0]
"""

from __future__ import annotations

import argparse

from repro.api import Assessment, GRID_PROVIDERS, default_spec
from repro.core.scenarios import ActiveScenarioGrid, EmbodiedScenarioGrid
from repro.inventory.iris import (
    IRIS_IMPLIED_SERVER_COUNT,
    PAPER_TABLE2_ENERGY_KWH,
    PAPER_TABLE2_TOTAL_KWH,
    iris_inventory_table,
)
from repro.reporting import AuditReport, EquivalenceReport, format_table
from repro.reporting.figures import ascii_line_chart
from repro.units import Carbon


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="node-count scale factor in (0, 1]; 1.0 = full fleet")
    return parser.parse_args()


def main() -> None:
    args = parse_args()

    # --- Table 1: the inventory ------------------------------------------------
    print(format_table(iris_inventory_table(),
                       title="Table 1 - IRIS hardware included in the project",
                       float_format=",.0f"))
    print()

    # --- Figure 1: the grid the snapshot drew from -------------------------------
    november = GRID_PROVIDERS.create("uk-november-2022")
    print(ascii_line_chart(november.series.values, width=72, height=12,
                           title="Figure 1 - GB grid intensity, synthetic November 2022 (gCO2e/kWh)"))
    refs = november.reference_values()
    print(f"Reference intensities: low {refs['low'].g_per_kwh:.0f}, "
          f"medium {refs['medium'].g_per_kwh:.0f}, "
          f"high {refs['high'].g_per_kwh:.0f} gCO2e/kWh "
          "(paper uses 50 / 175 / 300)")
    print()

    # --- Table 2: the measurement campaign ----------------------------------------
    assessment = Assessment.from_spec(default_spec(node_scale=args.scale)).run()
    snapshot = assessment.snapshot
    rows = assessment.table2_rows()
    for row in rows:
        paper = PAPER_TABLE2_ENERGY_KWH[row["site"]]
        row["paper_best_kwh"] = max(v for v in paper.values() if v is not None)
    print(format_table(
        rows,
        columns=["site", "facility", "pdu", "ipmi", "turbostat", "nodes", "paper_best_kwh"],
        title="Table 2 - Active energy measured for the snapshot period (kWh)",
    ))
    print(f"Simulated total: {snapshot.total_best_estimate_kwh:,.0f} kWh "
          f"(paper total: {PAPER_TABLE2_TOTAL_KWH:,.0f} kWh)")
    print()

    # --- Table 3: active carbon scenarios ---------------------------------------------
    energy = snapshot.active_energy_input()
    print(format_table(
        ActiveScenarioGrid().table3_rows(energy),
        columns=["intensity_level", "intensity_g_per_kwh", "pue", "carbon_kg"],
        title="Table 3 - Active carbon estimates from the simulated energy (kgCO2e)",
    ))
    print()

    # --- Table 4: embodied carbon scenarios ----------------------------------------------
    print(format_table(
        EmbodiedScenarioGrid().table4_rows(IRIS_IMPLIED_SERVER_COUNT),
        title=f"Table 4 - Snapshot embodied carbon for {IRIS_IMPLIED_SERVER_COUNT} servers (kgCO2e)",
        float_format=",.2f",
    ))
    print()

    # --- Summary -----------------------------------------------------------------------------
    active_low, active_high = ActiveScenarioGrid().range_kg(energy)
    embodied_low, embodied_high = EmbodiedScenarioGrid().range_kg(IRIS_IMPLIED_SERVER_COUNT)
    total_high = Carbon.from_kg(active_high + embodied_high)
    audit = AuditReport(title="IRIS 24-hour snapshot - summary")
    audit.add_key_values("Ranges (kgCO2e)", {
        "active low (paper 1066)": active_low,
        "active high (paper 9302)": active_high,
        "embodied low (paper 375)": embodied_low,
        "embodied high (paper 2409)": embodied_high,
    })
    audit.add_equivalences("Upper bound in everyday terms", total_high)
    print(audit.render())
    print(EquivalenceReport(total_high).summary())


if __name__ == "__main__":
    main()
