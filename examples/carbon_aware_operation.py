#!/usr/bin/env python3
"""Carbon-aware operation: what does load shifting buy on a real grid?

The paper's active-carbon term depends on *when* electricity is drawn as
well as how much: Figure 1 shows the GB grid swinging between roughly 30 and
350 gCO2e/kWh within single days.  This example quantifies the benefit of
operating a cluster in a grid-aware way:

1. simulate a week of batch load on a mid-sized cluster;
2. convert it to a half-hourly energy profile;
3. price that profile against the synthetic November-2022 intensity series
   three ways — period-average accounting, time-resolved accounting of the
   as-run schedule, and time-resolved accounting of a deferred schedule in
   which flexible (non-urgent) work is shifted into the lowest-carbon
   windows of each day.

Run with::

    python examples/carbon_aware_operation.py
"""

from __future__ import annotations

import numpy as np

from repro.api import GRID_PROVIDERS
from repro.inventory import default_catalog
from repro.power.node_power import NodePowerModel
from repro.power.traces import PowerBreakdownTrace
from repro.reporting import format_table
from repro.timeseries import TimeSeries, resample_mean
from repro.units import Energy
from repro.workload import BackfillScheduler, JobGenerator, SimulatedCluster, WorkloadProfile

#: Fraction of the cluster's work that is flexible enough to defer by a few
#: hours (data-processing campaigns, reprocessing, simulation sweeps).
FLEXIBLE_FRACTION = 0.4

DAYS = 7
STEP_S = 1800.0  # half-hourly, matching the intensity series


def simulate_week_energy_profile() -> TimeSeries:
    """Half-hourly site energy (kWh per interval) for a week of batch load."""
    catalog = default_catalog()
    spec = catalog.node("cpu-compute-standard")
    cluster = SimulatedCluster.homogeneous(64, spec.total_cores, id_prefix="caw")
    profile = WorkloadProfile(target_utilization=0.6, diurnal_amplitude=0.3)
    jobs = JobGenerator(profile, cluster.total_cores, seed=11,
                        max_cores_per_job=spec.total_cores).generate(
        DAYS * 86400.0, warmup_s=24 * 3600.0
    )
    trace, _ = BackfillScheduler(cluster).simulate(jobs, DAYS * 86400.0, step_s=600.0)
    power = PowerBreakdownTrace.from_utilization(trace, [NodePowerModel(spec)] * 64)
    site_power_w = resample_mean(power.total_series("wall"), STEP_S)
    # kWh per half-hour interval.
    return TimeSeries(site_power_w.start, site_power_w.step,
                      site_power_w.values * (STEP_S / 3600.0) / 1000.0)


def shift_flexible_load(profile: TimeSeries, intensity: TimeSeries,
                        flexible_fraction: float) -> TimeSeries:
    """Move the flexible share of each day's energy into its greenest half-hours.

    The firm share stays where it is; the flexible share of each calendar
    day is redistributed, within that day, into the intervals with the
    lowest carbon intensity (filling each interval up to the day's observed
    peak firm power so the cluster never exceeds its original peak draw).
    """
    per_day = int(round(86400.0 / profile.step))
    values = profile.values.copy()
    intensities = intensity.values
    shifted = values * (1.0 - flexible_fraction)
    for day_start in range(0, len(values), per_day):
        day_slice = slice(day_start, min(day_start + per_day, len(values)))
        flexible_energy = float(values[day_slice].sum() * flexible_fraction)
        headroom_cap = float(values[day_slice].max())
        order = np.argsort(intensities[day_slice])
        remaining = flexible_energy
        for index in order:
            if remaining <= 0:
                break
            slot = day_start + int(index)
            capacity = max(headroom_cap - shifted[slot], 0.0)
            added = min(capacity, remaining)
            shifted[slot] += added
            remaining -= added
        # Anything that could not be placed under the cap stays in its
        # original slots (proportionally), so no energy is lost.
        if remaining > 0:
            shifted[day_slice] += remaining * (values[day_slice] / values[day_slice].sum())
    return TimeSeries(profile.start, profile.step, shifted)


def main() -> None:
    # The paper's synthetic November-2022 grid, resolved by name from the
    # assessment API's provider registry (swap the name for any region).
    intensity_series = GRID_PROVIDERS.create("uk-november-2022", days=DAYS)
    energy_profile = simulate_week_energy_profile()

    total_kwh = energy_profile.total()
    average_carbon = intensity_series.carbon_for_energy(Energy.from_kwh(total_kwh))
    as_run_carbon = intensity_series.carbon_for_energy_profile(energy_profile)
    shifted_profile = shift_flexible_load(energy_profile, intensity_series.series,
                                          FLEXIBLE_FRACTION)
    shifted_carbon = intensity_series.carbon_for_energy_profile(shifted_profile)

    assert abs(shifted_profile.total() - total_kwh) < 1e-6 * total_kwh

    rows = [
        {"accounting": "period-average intensity", "carbon_kg": average_carbon.kg,
         "saving_vs_average": 0.0},
        {"accounting": "time-resolved, as-run schedule", "carbon_kg": as_run_carbon.kg,
         "saving_vs_average": 1.0 - as_run_carbon.kg / average_carbon.kg},
        {"accounting": f"time-resolved, {FLEXIBLE_FRACTION:.0%} of load shifted",
         "carbon_kg": shifted_carbon.kg,
         "saving_vs_average": 1.0 - shifted_carbon.kg / average_carbon.kg},
    ]
    print(format_table(
        rows,
        title=(f"One week, {total_kwh:,.0f} kWh on the synthetic GB grid "
               f"(mean {intensity_series.mean_intensity().g_per_kwh:.0f} gCO2e/kWh)"),
        float_format=",.3f",
    ))
    print()
    saving = average_carbon.kg - shifted_carbon.kg
    print(f"Shifting {FLEXIBLE_FRACTION:.0%} of the work into each day's greenest "
          f"half-hours saves about {saving:,.0f} kgCO2e over the week "
          f"({saving / average_carbon.kg:.1%} of the active carbon) without "
          "reducing the amount of work done.")


if __name__ == "__main__":
    main()
