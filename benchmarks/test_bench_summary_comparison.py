"""Bench: the paper's summary comparison (section 6).

Combines the Table 3 and Table 4 grids into the paper's closing statements:

* embodied carbon for the 24-hour snapshot lies between roughly 375 and
  2,409 kgCO2e, active carbon between roughly 1,066 and 9,302 kgCO2e;
* embodied carbon is the smaller share for most scenario combinations;
* the total corresponds to roughly 1-4 return 12-hour flights (at
  92 kgCO2e per passenger-hour);
* as the grid decarbonises, embodied carbon comes to dominate.
"""

from __future__ import annotations

import pytest

from repro.core.scenarios import ActiveScenarioGrid, EmbodiedScenarioGrid
from repro.core.uncertainty import (
    UncertainInput,
    closed_form_draws,
    summarise_closed_form,
)
from repro.inventory.iris import IRIS_IMPLIED_SERVER_COUNT
from repro.io.jsonio import write_json
from repro.reporting.equivalents import EquivalenceReport, passenger_flight_days_equivalent
from repro.reporting.report import AuditReport
from repro.reporting.tables import format_kv_table
from repro.units.quantities import Carbon


def test_bench_summary_comparison(benchmark, full_snapshot, results_dir):
    """Regenerate the summary ranges, flight equivalence and crossover."""

    energy = full_snapshot.active_energy_input()

    def evaluate_summary():
        active_low, active_high = ActiveScenarioGrid().range_kg(energy)
        embodied_low, embodied_high = EmbodiedScenarioGrid().range_kg(
            IRIS_IMPLIED_SERVER_COUNT
        )
        monte_carlo = summarise_closed_form(closed_form_draws(
            UncertainInput(), energy.it_energy_kwh,
            IRIS_IMPLIED_SERVER_COUNT, period_days=1.0,
            n_samples=20_000, seed=42))
        return active_low, active_high, embodied_low, embodied_high, monte_carlo

    active_low, active_high, embodied_low, embodied_high, monte_carlo = benchmark(
        evaluate_summary
    )

    total_low = Carbon.from_kg(active_low + embodied_low)
    total_high = Carbon.from_kg(active_high + embodied_high)
    summary = {
        "active carbon range kg (paper 1066-9302)": f"{active_low:,.0f} - {active_high:,.0f}",
        "embodied carbon range kg (paper 375-2409)": f"{embodied_low:,.0f} - {embodied_high:,.0f}",
        "total range kg": f"{total_low.kg:,.0f} - {total_high.kg:,.0f}",
        "flight-days low (paper ~1)": passenger_flight_days_equivalent(total_low),
        "flight-days high (paper ~4-5)": passenger_flight_days_equivalent(total_high),
        "Monte-Carlo mean total kg": monte_carlo.total_kg_mean,
        "Monte-Carlo mean embodied fraction": monte_carlo.embodied_fraction_mean,
        "P(embodied > active)": monte_carlo.probability_embodied_exceeds_active,
    }

    print()
    print(format_kv_table(summary, title="Summary comparison (section 6)",
                          float_format=",.2f"))
    print()
    print(EquivalenceReport(total_high).summary())

    report = AuditReport(title="IRIS 24-hour snapshot - summary")
    report.add_table("Table 2 (simulated)", full_snapshot.table2_rows())
    report.add_key_values("Summary", summary, float_format=",.2f")
    report.add_equivalences("Everyday equivalents (upper bound)", total_high)
    (results_dir / "summary_report.md").write_text(report.render(), encoding="utf-8")
    write_json(results_dir / "summary_comparison.json",
               {**{k: str(v) for k, v in summary.items()},
                "monte_carlo": monte_carlo.as_dict()})

    # The paper's ranges are reproduced (tolerances reflect the simulated
    # energy being within a few percent of Table 2 and the paper's High PUE
    # column actually using 1.6 rather than the stated 1.5).
    assert embodied_low == pytest.approx(375.0, abs=2.0)
    assert embodied_high == pytest.approx(2409.0, abs=4.0)
    assert active_low == pytest.approx(1066.0, rel=0.12)
    assert active_high == pytest.approx(9302.0, rel=0.15)

    # Embodied is the smaller share for most scenario corners.
    assert monte_carlo.embodied_fraction_mean < 0.5
    assert monte_carlo.probability_embodied_exceeds_active < 0.35

    # Flight equivalence: roughly 1 at the bottom, roughly 4-5 at the top.
    assert 0.5 < passenger_flight_days_equivalent(total_low) < 1.5
    assert 3.0 < passenger_flight_days_equivalent(total_high) < 6.0
