"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper.  The
full-scale IRIS snapshot simulation (the expensive part, a few seconds) is
run once per session and shared by the benches that consume its output
(Tables 2 and 3 and the summary comparison).

Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the regenerated tables next to the timing results.  Each bench
also writes its rows to ``benchmarks/results/`` as CSV/JSON so the output
can be diffed against the paper without re-running.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.snapshot.config import build_iris_snapshot_config
from repro.snapshot.experiment import SnapshotExperiment

#: Where the benches drop their regenerated tables.
RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: This directory, for marking everything collected under it.
BENCH_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    """Mark every benchmark test ``slow``.

    The benches assert wall-clock ratios and regenerate full-scale tables;
    CI runs them serially (timing under ``pytest-xdist`` workers is
    unreliable) while the functional suite runs in parallel with
    ``-m "not slow"``.
    """
    for item in items:
        try:
            in_benchmarks = Path(str(item.fspath)).resolve().is_relative_to(
                BENCH_DIR)
        except (OSError, ValueError):
            in_benchmarks = False
        if in_benchmarks:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def full_snapshot():
    """The full-scale (2,462-node) IRIS snapshot simulation."""
    config = build_iris_snapshot_config()
    return SnapshotExperiment(config).run()
