"""Extension bench: including data-centre infrastructure embodied carbon.

The paper excludes the embodied carbon of the buildings, cooling and power
plant hosting IRIS and lists it as required future input.  This bench adds
that term using the parametric facility model and asks whether it changes
the paper's conclusion that active carbon dominates the snapshot.

Expected outcome: the facility term adds a noticeable but not dominant
amount to the embodied side (facility plant is amortised over ~20 years),
so the paper's qualitative conclusion survives — which is exactly why it is
reported as an extension rather than a correction.
"""

from __future__ import annotations


from repro.core.embodied import EmbodiedCarbonCalculator
from repro.core.scenarios import ActiveScenarioGrid, EmbodiedScenarioGrid
from repro.embodied.facility import FacilityEmbodiedModel
from repro.inventory.iris import IRIS_IMPLIED_SERVER_COUNT
from repro.io.csvio import write_rows_csv
from repro.reporting.tables import format_table
from repro.units.quantities import Duration


def test_bench_extension_facility_embodied(benchmark, full_snapshot, results_dir):
    """Add facility embodied carbon to the snapshot and compare shares."""

    period = Duration.from_hours(24)
    facility_model = FacilityEmbodiedModel()

    def evaluate():
        node_assets = full_snapshot.embodied_assets()
        facility_assets = []
        for result in full_snapshot.site_results:
            it_power_kw = (result.best_estimate_kwh / result.duration_hours)
            rack_count = max(1, result.config.node_count // 40 + 1)
            facility_assets.append(
                facility_model.as_asset(
                    f"{result.site}-facility", it_power_kw, rack_count
                )
            )
        calculator = EmbodiedCarbonCalculator()
        nodes_only = calculator.evaluate(node_assets, period)
        with_facility = calculator.evaluate(node_assets + facility_assets, period)
        return nodes_only, with_facility, facility_assets

    nodes_only, with_facility, facility_assets = benchmark(evaluate)

    facility_day_kg = with_facility.total_kg - nodes_only.total_kg
    energy = full_snapshot.active_energy_input()
    active_low, active_high = ActiveScenarioGrid().range_kg(energy)
    embodied_low, embodied_high = EmbodiedScenarioGrid().range_kg(IRIS_IMPLIED_SERVER_COUNT)

    rows = [
        {"quantity": "embodied, nodes+network only (kg/day)", "value": nodes_only.total_kg},
        {"quantity": "embodied incl. facility plant (kg/day)", "value": with_facility.total_kg},
        {"quantity": "facility contribution (kg/day)", "value": facility_day_kg},
        {"quantity": "facility installed embodied (tCO2e)",
         "value": sum(a.embodied_kgco2 for a in facility_assets) / 1000.0},
        {"quantity": "paper embodied range low (kg/day)", "value": embodied_low},
        {"quantity": "paper embodied range high (kg/day)", "value": embodied_high},
        {"quantity": "active range low (kg/day)", "value": active_low},
        {"quantity": "active range high (kg/day)", "value": active_high},
    ]
    print()
    print(format_table(rows, title="Extension - facility embodied carbon",
                       float_format=",.1f"))
    write_rows_csv(results_dir / "extension_facility_embodied.csv", rows)

    # The facility term is positive but does not overturn the paper's
    # conclusion: even with it included, the embodied side stays below the
    # upper end of the active range.
    assert facility_day_kg > 0.0
    assert facility_day_kg < nodes_only.total_kg
    assert with_facility.total_kg < active_high
    # It is, however, material: more than 5% of the node-only embodied term.
    assert facility_day_kg / nodes_only.total_kg > 0.05
    assert "facility" in with_facility.carbon_by_component_kg
