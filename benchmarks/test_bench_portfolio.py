"""Bench: the federated portfolio engine vs naive independent assessments.

The acceptance bar for the portfolio engine: a 3-site portfolio whose
members share one physical configuration must perform exactly **one**
substrate simulation (asserted structurally) and be demonstrably faster
than running the three member assessments independently with cold caches
— the pre-portfolio pattern, which pays the simulation once per site.
Run at 10% fleet scale: large enough that the simulation dominates the
per-member model evaluations (the speedup only grows with scale), small
enough that the naive side stays affordable.
"""

from __future__ import annotations

import time

from repro.api import Assessment, SubstrateCache, default_spec
from repro.io.jsonio import write_json
from repro.portfolio import PortfolioRunner, PortfolioSpec

SCALE = 0.1
REGIONS = ("GB", "FR", "PL")
SHARES = (0.5, 0.3, 0.2)

#: Conservative wall-clock floor: one simulation instead of three, minus
#: the shared per-member model/intensity work (typically ~3x measured).
SPEEDUP_FLOOR = 2.5


def _portfolio_spec(scale: float) -> PortfolioSpec:
    return PortfolioSpec.from_regions(
        list(REGIONS), base_spec=default_spec(node_scale=scale),
        load_shares=list(SHARES), name="bench")


def _naive_assessments(spec: PortfolioSpec) -> list:
    """One cold-cache Assessment per member — the pre-portfolio pattern."""
    totals = []
    for member in spec.members:
        result = Assessment.from_spec(member.effective_spec(),
                                      substrates=SubstrateCache()).run()
        totals.append(result.total_kg)
    return totals


def test_bench_portfolio_vs_naive(results_dir):
    spec = _portfolio_spec(SCALE)

    start = time.perf_counter()
    naive_totals = _naive_assessments(spec)
    naive_s = time.perf_counter() - start

    cache = SubstrateCache()
    start = time.perf_counter()
    result = PortfolioRunner(spec, substrates=cache).run()
    portfolio_s = time.perf_counter() - start

    # Same physics: member for member, the answers agree exactly.
    assert [member.total_kg for member in result.members] == naive_totals
    # The primary assertion is structural, not wall-clock: one simulation
    # backed all three member sites while the naive loop ran three.
    assert cache.snapshot_runs == 1
    speedup = naive_s / portfolio_s if portfolio_s > 0 else float("inf")
    assert speedup >= SPEEDUP_FLOOR, (
        f"portfolio run ({portfolio_s:.2f}s) not meaningfully faster than "
        f"{len(REGIONS)} naive cold-cache assessments ({naive_s:.2f}s); "
        f"speedup {speedup:.2f}x < {SPEEDUP_FLOOR}x floor")
    write_json(results_dir / "bench_portfolio.json", {
        "sites": len(REGIONS),
        "node_scale": SCALE,
        "naive_seconds": naive_s,
        "portfolio_seconds": portfolio_s,
        "speedup": speedup,
        "snapshot_runs_portfolio": cache.snapshot_runs,
        "snapshot_runs_naive": len(REGIONS),
    })
    print(f"\n{len(REGIONS)}-site portfolio: naive {naive_s:.2f}s, "
          f"federated {portfolio_s:.2f}s ({speedup:.1f}x)")


def test_bench_portfolio_steady_state(benchmark):
    """Steady-state portfolio cost once the substrate is cached."""
    spec = _portfolio_spec(SCALE)
    cache = SubstrateCache()
    runner = PortfolioRunner(spec, substrates=cache)
    runner.run()  # warm the cache

    result = benchmark(runner.run)
    assert len(result) == len(REGIONS)
    assert cache.snapshot_runs == 1


def test_portfolio_smoke_tiny_scale(results_dir):
    """CI smoke: structural assertions only, at a scale CI can afford."""
    spec = _portfolio_spec(0.02)
    cache = SubstrateCache()
    result = PortfolioRunner(spec, substrates=cache).run()
    assert cache.snapshot_runs == 1
    assert result.total_kg > 0
    assert result.best_site_for(1000.0).name == "FR"
    write_json(results_dir / "bench_portfolio_smoke.json", result.summary())
