"""Bench: Table 4 — embodied carbon for the snapshot period.

Regenerates the embodied-carbon grid (per-server estimate {400, 1100} kgCO2e
x lifespan {3..7} years) for the server count implied by the paper's own
arithmetic, checks every printed cell, and additionally shows the same grid
evaluated with

* the sum of the Table 2 node counts (2,462 — slightly above the count the
  paper's arithmetic implies), and
* per-node embodied figures drawn from the PCF datasheet database and the
  bottom-up component estimator, demonstrating where the 400/1100 bounds
  come from.
"""

from __future__ import annotations

import pytest

from repro.core.scenarios import EmbodiedScenarioGrid
from repro.embodied.bottom_up import BottomUpEstimator
from repro.embodied.datasheets import (
    PAPER_SERVER_EMBODIED_HIGH_KGCO2,
    PAPER_SERVER_EMBODIED_LOW_KGCO2,
    default_pcf_database,
)
from repro.inventory.catalog import default_catalog
from repro.inventory.iris import IRIS_IMPLIED_SERVER_COUNT, IRIS_SNAPSHOT_MEASURED_NODES
from repro.io.csvio import write_rows_csv
from repro.reporting.tables import format_table

#: Table 4 as printed: lifespan -> (snapshot kg at 400, snapshot kg at 1100).
PAPER_TABLE4 = {
    3.0: (876.0, 2409.0),
    4.0: (657.0, 1806.0),
    5.0: (526.0, 1445.0),
    6.0: (438.0, 1204.0),
    7.0: (375.0, 1032.0),
}


def test_bench_table4_embodied(benchmark, results_dir):
    """Regenerate Table 4 and verify every cell."""

    grid = EmbodiedScenarioGrid()

    def evaluate():
        implied = grid.table4_rows(IRIS_IMPLIED_SERVER_COUNT)
        measured = grid.table4_rows(sum(IRIS_SNAPSHOT_MEASURED_NODES.values()))
        return implied, measured

    implied_rows, measured_rows = benchmark(evaluate)

    for row in implied_rows:
        low, high = PAPER_TABLE4[row["lifespan_years"]]
        row["paper_kg_400"] = low
        row["paper_kg_1100"] = high

    print()
    print(format_table(
        implied_rows,
        columns=["lifespan_years", "per_server_per_day_kg_400", "per_server_per_day_kg_1100",
                 "snapshot_kg_400", "paper_kg_400", "snapshot_kg_1100", "paper_kg_1100"],
        title=f"Table 4 - Snapshot embodied carbon ({IRIS_IMPLIED_SERVER_COUNT} servers, kgCO2e)",
        float_format=",.2f",
    ))
    print()
    print(format_table(
        measured_rows,
        columns=["lifespan_years", "snapshot_kg_400", "snapshot_kg_1100"],
        title="Table 4 - Same grid with the 2,462 nodes of Table 2",
        float_format=",.2f",
    ))
    write_rows_csv(results_dir / "table4_embodied.csv", implied_rows)

    # Every printed cell reproduced to within rounding.
    for row in implied_rows:
        assert row["snapshot_kg_400"] == pytest.approx(row["paper_kg_400"], abs=2.0)
        assert row["snapshot_kg_1100"] == pytest.approx(row["paper_kg_1100"], abs=4.0)

    # The paper's summary range.
    low, high = grid.range_kg(IRIS_IMPLIED_SERVER_COUNT)
    assert low == pytest.approx(375.0, abs=2.0)
    assert high == pytest.approx(2409.0, abs=4.0)

    # The 400/1100 bounds are consistent with the PCF database and the
    # bottom-up estimator for the representative configurations.
    database = default_pcf_database()
    db_low, db_high = database.category_range_kgco2("rack-server")
    assert db_low <= PAPER_SERVER_EMBODIED_LOW_KGCO2
    assert db_high >= PAPER_SERVER_EMBODIED_HIGH_KGCO2
    catalog = default_catalog()
    estimator = BottomUpEstimator()
    for model in ("cpu-compute-small", "cpu-compute-standard", "cpu-compute-highmem"):
        estimate = estimator.estimate_node(catalog.node(model)).total_kgco2
        assert PAPER_SERVER_EMBODIED_LOW_KGCO2 * 0.7 <= estimate <= PAPER_SERVER_EMBODIED_HIGH_KGCO2 * 1.3
