"""Bench: the columnar fleet engine vs the seed per-node substrate, at scale.

The acceptance bar for the columnar refactor: at ``node_scale=1.0`` (the
full 2,462-node IRIS fleet) the workload→power substrate — placements →
utilisation matrix → power → measured site energies — must run at least
**5x faster** through the columnar engine
(:meth:`FleetUtilization.from_placements` +
:meth:`PowerBreakdownTrace.from_utilization` + the instruments' reduction
fast path) than through the retained per-node oracle
(``build_trace_loop`` + ``from_utilization_loop``), while agreeing with it
to ≤1e-9 relative on every Table 2 energy and on the facility power
series.

The event-driven scheduler itself is shared by both engines (it is not a
per-node loop), so each site's jobs are scheduled once and the two
substrates are timed over identical placements.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.inventory.network import NetworkFabric
from repro.io.jsonio import write_json
from repro.power.campaign import MeasurementCampaign
from repro.power.node_power import NodePowerModel
from repro.power.traces import PowerBreakdownTrace
from repro.snapshot.config import build_iris_snapshot_config
from repro.snapshot.experiment import SnapshotExperiment, SnapshotResult, SiteSnapshotResult
from repro.workload.jobs import JobGenerator, WorkloadProfile
from repro.workload.scheduler import BackfillScheduler

#: The acceptance bar (measured ~6x on a single-core container; the margin
#: only widens on wider machines where the BLAS reductions parallelise).
MIN_SPEEDUP = 5.0

#: Old engine vs new engine agreement on energies and power series.
EQUIVALENCE_RTOL = 1e-9

NODE_SCALE = 1.0
TIMING_REPEATS = 3


def _schedule_sites(config):
    """Schedule every site once; both engines consume the same placements."""
    experiment = SnapshotExperiment(config)
    sites = []
    for site in config.sites:
        node_ids, specs = experiment._site_specs(site)
        target = experiment._site_target_utilization(site, specs)
        cluster = experiment._build_cluster(node_ids, specs)
        profile = WorkloadProfile(
            target_utilization=min(max(target, 0.01), 1.0),
            cpu_intensity_low=1.0, cpu_intensity_high=1.0)
        generator = JobGenerator(
            profile, cluster.total_cores, seed=site.workload_seed,
            max_cores_per_job=min(node.cores for node in cluster.nodes))
        jobs = generator.generate(config.duration_s,
                                  warmup_s=config.warmup_hours * 3600.0)
        scheduler = BackfillScheduler(cluster)
        placements, stats = scheduler.run(jobs, config.duration_s)
        sites.append({
            "site": site,
            "scheduler": scheduler,
            "placements": placements,
            "stats": stats,
            "models": [NodePowerModel(spec) for spec in specs],
            "target": target,
            "fabric": NetworkFabric.sized_for_nodes(site.node_count),
            "campaign": MeasurementCampaign(experiment._instruments(site),
                                            seed=config.campaign_seed),
        })
    return sites


@pytest.fixture(scope="module")
def scheduled_fleet():
    config = build_iris_snapshot_config(node_scale=NODE_SCALE)
    return config, _schedule_sites(config)


def _run_substrate(config, sites, engine: str):
    """Placements → measured Table 2 energies, through one engine."""
    site_results = []
    for entry in sites:
        site = entry["site"]
        scheduler = entry["scheduler"]
        if engine == "oracle":
            trace = scheduler.build_trace_loop(
                entry["placements"], config.duration_s,
                step_s=config.trace_step_s)
            power = PowerBreakdownTrace.from_utilization_loop(
                trace, entry["models"])
        else:
            trace = scheduler.build_trace(
                entry["placements"], config.duration_s,
                step_s=config.trace_step_s)
            power = PowerBreakdownTrace.from_utilization(trace, entry["models"])
        report = entry["campaign"].measure_site(
            site.site, power, network_power_w=entry["fabric"].total_power_w,
            methods=site.measurement_methods)
        result = SiteSnapshotResult(
            site=site.site,
            config=site,
            energy_report=report,
            scheduler_stats=entry["stats"],
            mean_utilization=trace.mean_utilization(),
            target_utilization=entry["target"],
            network_power_w=entry["fabric"].total_power_w,
            per_node_utilization=dict(
                zip(trace.node_ids, trace.mean_per_node().tolist())),
            node_specs={},
            site_power_series=power.total_series("wall"),
        )
        object.__setattr__(result, "_duration_hours", config.duration_hours)
        site_results.append(result)
    return SnapshotResult(config=config, site_results=tuple(site_results))


def _best_time(fn, repeats: int = TIMING_REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _assert_equivalent(oracle: SnapshotResult, columnar: SnapshotResult):
    """The fleet-scale golden bar: Table 2 energies and facility series agree."""
    for row_old, row_new in zip(oracle.table2_rows(), columnar.table2_rows()):
        assert row_old["site"] == row_new["site"]
        for method, old_value in row_old.items():
            if method in ("site", "nodes"):
                continue
            new_value = row_new[method]
            if old_value is None:
                assert new_value is None
                continue
            assert new_value == pytest.approx(
                old_value, rel=EQUIVALENCE_RTOL, abs=1e-9), (
                f"{row_old['site']}/{method}: {new_value} != {old_value}")
    series_old = oracle.facility_power_series()
    series_new = columnar.facility_power_series()
    np.testing.assert_allclose(series_new.values, series_old.values,
                               rtol=EQUIVALENCE_RTOL, atol=1e-6)


def test_bench_fleet_engine_full_scale(scheduled_fleet, results_dir):
    config, sites = scheduled_fleet

    oracle_s = _best_time(lambda: _run_substrate(config, sites, "oracle"))
    columnar_s = _best_time(lambda: _run_substrate(config, sites, "columnar"))
    speedup = oracle_s / columnar_s if columnar_s > 0 else float("inf")

    oracle = _run_substrate(config, sites, "oracle")
    columnar = _run_substrate(config, sites, "columnar")
    _assert_equivalent(oracle, columnar)
    assert columnar.total_nodes == 2462

    write_json(results_dir / "bench_fleet_engine.json", {
        "node_scale": NODE_SCALE,
        "total_nodes": columnar.total_nodes,
        "placements": sum(len(entry["placements"]) for entry in sites),
        "oracle_seconds": oracle_s,
        "columnar_seconds": columnar_s,
        "speedup": speedup,
        "total_best_estimate_kwh": columnar.total_best_estimate_kwh,
    })
    print(f"\nfleet substrate at scale {NODE_SCALE}: oracle {oracle_s:.3f}s, "
          f"columnar {columnar_s:.3f}s ({speedup:.1f}x)")

    assert speedup >= MIN_SPEEDUP, (
        f"columnar engine only {speedup:.2f}x faster than the per-node "
        f"oracle (bar: {MIN_SPEEDUP}x; oracle {oracle_s:.3f}s, "
        f"columnar {columnar_s:.3f}s)")


def test_fleet_engine_smoke_tiny_scale():
    """CI smoke: both engines agree end to end at a tiny fleet scale.

    Runs in a couple of seconds; keeps this benchmark importable and its
    engine plumbing exercised on every CI run without the full-scale cost.
    """
    config = build_iris_snapshot_config(node_scale=0.02)
    oracle = SnapshotExperiment(config, engine="oracle").run()
    columnar = SnapshotExperiment(config, engine="columnar").run()
    _assert_equivalent(oracle, columnar)
    assert oracle.total_best_estimate_kwh > 0
