"""Bench: Figure 1 — UK electricity generation carbon intensity, November 2022.

Regenerates the half-hourly GB grid intensity for a synthetic November 2022
and checks the statistical properties the paper reads off the figure:

* significant variability (roughly an order of magnitude between quiet windy
  nights and still evening peaks);
* the Low / Medium / High reference values of roughly 50 / 175 / 300
  gCO2e/kWh used in Table 3.
"""

from __future__ import annotations

import pytest

from repro.grid.synthetic import uk_november_2022_intensity
from repro.io.csvio import write_rows_csv
from repro.reporting.figures import ascii_line_chart
from repro.reporting.tables import format_kv_table


def test_bench_figure1_intensity(benchmark, results_dir):
    """Regenerate Figure 1 (as a text chart plus summary statistics)."""

    series = benchmark(uk_november_2022_intensity)

    daily_means = series.rolling_daily_mean()
    references = series.reference_values()
    summary = {
        "samples (half-hours)": len(series.series),
        "minimum gCO2/kWh": series.min_intensity().g_per_kwh,
        "5th percentile gCO2/kWh": series.percentile(5).g_per_kwh,
        "mean gCO2/kWh": series.mean_intensity().g_per_kwh,
        "95th percentile gCO2/kWh": series.percentile(95).g_per_kwh,
        "maximum gCO2/kWh": series.max_intensity().g_per_kwh,
        "paper Low reference": 50.0,
        "paper Medium reference": 175.0,
        "paper High reference": 300.0,
    }

    print()
    print(ascii_line_chart(
        series.series.values, width=72, height=14,
        title="Figure 1 - GB grid carbon intensity, synthetic November 2022",
        y_label="gCO2e/kWh",
    ))
    print()
    print(format_kv_table(summary, title="Figure 1 summary statistics"))
    write_rows_csv(
        results_dir / "figure1_intensity.csv",
        [
            {"half_hour_index": i, "g_per_kwh": float(v)}
            for i, v in enumerate(series.series.values)
        ],
    )
    write_rows_csv(
        results_dir / "figure1_daily_means.csv",
        [{"day": i + 1, "mean_g_per_kwh": v} for i, v in enumerate(daily_means)],
    )

    # One month of half-hourly samples.
    assert len(series.series) == 30 * 48
    # The paper's reference values fall out of the distribution.
    assert references["low"].g_per_kwh == pytest.approx(50.0, abs=30.0)
    assert references["medium"].g_per_kwh == pytest.approx(175.0, abs=25.0)
    assert references["high"].g_per_kwh == pytest.approx(300.0, abs=35.0)
    # Figure 1 shows strong variability both within and across days.
    assert series.max_intensity().g_per_kwh > 2.5 * series.min_intensity().g_per_kwh
    assert max(daily_means) - min(daily_means) > 50.0
