"""Bench: the vectorized ensemble vs the per-sample Assessment oracle.

The acceptance bar for the uncertainty engine: a 10,000-sample ensemble
over the paper's input envelope (intensity x PUE x per-server embodied x
lifetime) must run at least 20x faster through the columnar analysis pass
than through the per-sample ``Assessment`` loop, while agreeing with it to
<= 1e-9 relative on every reported quantile — and the workload -> power
substrate must be simulated exactly once for the whole ensemble.

Run at 2% fleet scale so the oracle side stays affordable; both sides
share one warmed substrate cache, so the comparison isolates the analysis
stage (the part the ensemble actually multiplies by n).
"""

from __future__ import annotations

import time

import numpy as np

from repro.api import SubstrateCache, default_spec
from repro.io.jsonio import write_json
from repro.uncertainty import EnsembleRunner

SCALE = 0.02
SAMPLES = 10_000
SEED = 7
PROBS = (0.05, 0.25, 0.50, 0.75, 0.95)
RTOL = 1e-9


def _runner(cache: SubstrateCache) -> EnsembleRunner:
    # The paper's default envelope: triangular intensity and PUE, uniform
    # per-server embodied carbon, discrete lifetimes.
    return EnsembleRunner(default_spec(node_scale=SCALE), substrates=cache)


def test_bench_vectorized_vs_oracle(results_dir):
    cache = SubstrateCache()
    runner = _runner(cache)
    # Warm the substrate so both sides time the analysis stage only.
    cache.snapshot(runner.spec.base)
    assert cache.snapshot_runs == 1

    start = time.perf_counter()
    oracle = runner.run(n_samples=SAMPLES, seed=SEED, method="oracle")
    oracle_s = time.perf_counter() - start

    start = time.perf_counter()
    vectorized = runner.run(n_samples=SAMPLES, seed=SEED, method="vectorized")
    vectorized_s = time.perf_counter() - start

    # The substrate was simulated exactly once for the whole ensemble
    # (both methods, all 20,000 evaluations).
    assert cache.snapshot_runs == 1

    # Same seed -> same sample matrix -> the two methods price identical
    # scenarios; every quantile of every metric must agree to <= 1e-9 rel.
    worst = 0.0
    for metric in ("active_kg", "embodied_kg", "total_kg"):
        expected = np.quantile(oracle.metric(metric), PROBS)
        actual = np.quantile(vectorized.metric(metric), PROBS)
        rel = np.max(np.abs(actual - expected) / np.abs(expected))
        worst = max(worst, float(rel))
        assert rel <= RTOL, (
            f"{metric} quantiles diverge: {rel:.2e} > {RTOL:.0e} "
            f"({actual} vs {expected})")
    assert (vectorized.probability_embodied_exceeds_active
            == oracle.probability_embodied_exceeds_active)

    speedup = oracle_s / vectorized_s if vectorized_s > 0 else float("inf")
    assert speedup >= 20.0, (
        f"vectorized ensemble ({vectorized_s:.3f}s) not >= 20x faster than "
        f"the oracle ({oracle_s:.2f}s) at {SAMPLES} samples; "
        f"got {speedup:.1f}x")
    write_json(results_dir / "bench_uncertainty.json", {
        "samples": SAMPLES,
        "node_scale": SCALE,
        "oracle_seconds": oracle_s,
        "vectorized_seconds": vectorized_s,
        "speedup": speedup,
        "worst_quantile_rel_error": worst,
        "snapshot_runs": cache.snapshot_runs,
    })
    print(f"\n{SAMPLES:,}-sample ensemble: oracle {oracle_s:.2f}s, "
          f"vectorized {vectorized_s:.3f}s ({speedup:.0f}x, worst quantile "
          f"rel err {worst:.1e})")


def test_bench_vectorized_ensemble_timing(benchmark):
    """Steady-state vectorized ensemble cost once the substrate is cached."""
    cache = SubstrateCache()
    runner = _runner(cache)
    runner.run(n_samples=64, seed=0)  # warm the cache

    result = benchmark(lambda: runner.run(n_samples=SAMPLES, seed=SEED))
    assert result.n_samples == SAMPLES
    assert cache.snapshot_runs == 1


def test_uncertainty_smoke_tiny_scale():
    """CI smoke: a small ensemble end to end, vectorized, one simulation."""
    cache = SubstrateCache()
    runner = _runner(cache)
    result = runner.run(n_samples=256, seed=3)
    assert result.method == "vectorized"
    assert cache.snapshot_runs == 1
    quantiles = result.quantiles("total_kg")
    assert quantiles["p05"] < quantiles["p50"] < quantiles["p95"]
    assert 0.0 <= result.probability_embodied_exceeds_active <= 1.0
