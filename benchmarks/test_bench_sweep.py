"""Bench: the columnar sweep compiler vs the per-spec reference loop.

The acceptance bar for the compiled batch engine is twofold:

* **Bit identity.**  Over a 1,000-point analysis-only grid (intensity ×
  PUE × lifetime × per-server embodied — one physical configuration, so
  one simulation) the columnar engine must reproduce the reference
  loop's results exactly: identical ordering, serialised summary rows
  byte-identical, totals within 1e-12 (they are in fact bit-equal — the
  kernel replays the reference float operations in operand order).
* **Speed on the warm substrate.**  Both engines share one pre-simulated
  substrate, so the timing isolates the analysis stage the compiler
  vectorises: the reference loop pays ~1,000 Python ``Assessment``
  evaluations (per-point component resolution, per-asset embodied
  accumulation), the columnar engine one planning pass plus one
  vectorised kernel pass.  The bar is **10x**; measured ~40x on a
  single-core container, widening with grid size.

A second measurement sweeps a mixed grid (a fallback axis alongside
columnar ones) to record the planner's partitioned cost profile, and the
tiny-scale smoke is the CI entry point pinning cross-engine equality
end to end.
"""

from __future__ import annotations

import json
import time

from repro.api import BatchAssessmentRunner, SubstrateCache, default_spec
from repro.io.jsonio import write_json

#: The acceptance bar on a warm substrate (measured ~40x single-core).
MIN_SPEEDUP = 10.0

#: Cross-engine agreement tolerance demanded by the acceptance criteria;
#: the engines are in fact bit-identical and the rows byte-identical.
TOLERANCE = 1e-12

#: One physical configuration: the whole grid costs one simulation.
NODE_SCALE = 0.1

TIMING_REPEATS = 2


def _analysis_grid() -> dict:
    """A 10 x 5 x 5 x 4 = 1,000-point analysis-only grid."""
    return dict(
        intensity=[20.0 * (i + 1) for i in range(10)],
        pue=[1.05, 1.15, 1.3, 1.45, 1.6],
        lifetime=[3.0, 4.0, 5.0, 6.0, 7.0],
        per_server_kgco2=[900.0, 1100.0, 1318.0, 1500.0],
    )


def _best_time(fn, repeats: int = TIMING_REPEATS):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _canonical_rows(batch):
    return [json.dumps(row, sort_keys=True) for row in batch.as_rows()]


def test_bench_sweep_columnar_speedup(results_dir):
    """1,000 analysis-only points, one warm substrate: >= 10x, bit-identical."""
    substrates = SubstrateCache()
    base = default_spec(node_scale=NODE_SCALE)
    substrates.snapshot(base)  # warm: simulation excluded from both timings
    assert substrates.snapshot_runs == 1

    axes = _analysis_grid()
    columnar = BatchAssessmentRunner(base, substrates=substrates)
    reference = BatchAssessmentRunner(base, substrates=substrates,
                                      batch_engine="reference")
    specs = columnar.grid_specs(**axes)
    assert len(specs) == 1000
    assert len({spec.physical_key() for spec in specs}) == 1

    reference_s, reference_batch = _best_time(lambda: reference.sweep(**axes))
    columnar_s, columnar_batch = _best_time(lambda: columnar.sweep(**axes))
    speedup = reference_s / columnar_s if columnar_s > 0 else float("inf")

    # The whole grid still cost exactly the one warm-up simulation.
    assert substrates.snapshot_runs == 1

    assert _canonical_rows(columnar_batch) == _canonical_rows(reference_batch)
    for col, ref in zip(columnar_batch, reference_batch):
        assert abs(col.total_kg - ref.total_kg) <= TOLERANCE * max(
            1.0, abs(ref.total_kg))

    mixed_axes = dict(
        intensity=[50.0, 175.0, 300.0],
        pue=[1.1, 1.3],
        amortization=["linear", "utilization-weighted"],
    )
    mixed_columnar_s, mixed_col = _best_time(
        lambda: columnar.sweep(**mixed_axes))
    mixed_reference_s, mixed_ref = _best_time(
        lambda: reference.sweep(**mixed_axes))
    assert _canonical_rows(mixed_col) == _canonical_rows(mixed_ref)

    write_json(results_dir / "bench_sweep.json", {
        "analysis_grid": {
            "node_scale": NODE_SCALE,
            "points": len(specs),
            "physical_groups": 1,
            "snapshot_runs": substrates.snapshot_runs,
            "reference_seconds": reference_s,
            "columnar_seconds": columnar_s,
            "speedup": speedup,
            "per_point_us_reference": 1e6 * reference_s / len(specs),
            "per_point_us_columnar": 1e6 * columnar_s / len(specs),
        },
        "mixed_grid": {
            "points": len(mixed_col),
            "fallback_points": sum(
                1 for spec in columnar.grid_specs(**mixed_axes)
                if spec.amortization != "linear"),
            "reference_seconds": mixed_reference_s,
            "columnar_seconds": mixed_columnar_s,
            "speedup": (mixed_reference_s / mixed_columnar_s
                        if mixed_columnar_s > 0 else float("inf")),
        },
    })
    print(f"\nsweep engines, {len(specs)} points at scale {NODE_SCALE}: "
          f"reference {reference_s:.3f}s, columnar {columnar_s:.3f}s "
          f"({speedup:.1f}x); mixed grid {mixed_reference_s:.3f}s vs "
          f"{mixed_columnar_s:.3f}s")

    assert speedup >= MIN_SPEEDUP, (
        f"columnar engine only {speedup:.2f}x faster than the reference "
        f"loop on a warm {len(specs)}-point grid (bar: {MIN_SPEEDUP}x; "
        f"reference {reference_s:.3f}s, columnar {columnar_s:.3f}s)")


def test_sweep_compiler_smoke_tiny_scale():
    """CI smoke: cross-engine equality end to end at tiny scale.

    Runs in a couple of seconds; the grid mixes columnar axes with a
    fallback point so both execution paths are exercised.
    """
    substrates = SubstrateCache()
    base = default_spec(node_scale=0.02)
    axes = dict(intensity=[50.0, 175.0], pue=[1.1, 1.3],
                amortization=["linear", "utilization-weighted"])
    columnar = BatchAssessmentRunner(
        base, substrates=substrates).sweep(**axes)
    reference = BatchAssessmentRunner(
        base, substrates=substrates, batch_engine="reference").sweep(**axes)
    assert substrates.snapshot_runs == 1
    assert _canonical_rows(columnar) == _canonical_rows(reference)
    assert all(result.total_kg > 0 for result in columnar)
