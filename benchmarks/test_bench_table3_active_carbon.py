"""Bench: Table 3 — active carbon estimates.

Evaluates the active-carbon scenario grid (carbon intensity 50/175/300
gCO2e/kWh x PUE 1.1/1.3/1.5) over both

* the paper's implied energy total (19,380 kWh — what its printed numbers
  divide back to), reproducing Table 3's cells, and
* the simulated measurement campaign's total, showing the same shape.

Known inconsistencies in the paper are asserted explicitly and recorded in
EXPERIMENTS.md: the Table 3 numbers imply ~19,380 kWh rather than Table 2's
18,760 kWh total, and the "High" PUE column is 1.6x rather than the stated
1.5x.
"""

from __future__ import annotations

import pytest

from repro.core.active import ActiveEnergyInput
from repro.core.scenarios import (
    PAPER_TABLE3_IMPLIED_HIGH_PUE,
    ActiveScenarioGrid,
    ScenarioLevel,
)
from repro.io.csvio import write_rows_csv
from repro.reporting.tables import format_table
from repro.units.quantities import Duration

#: Energy implied by the paper's Table 3 arithmetic (969 kg at 50 g/kWh).
PAPER_IMPLIED_ENERGY_KWH = 19380.0

#: Table 3 as printed: first the IT-only row, then the PUE grid.
PAPER_TABLE3_IT_ONLY = {"low": 969.0, "medium": 3391.0, "high": 5814.0}
PAPER_TABLE3_WITH_FACILITIES = {
    ("low", 1.1): 1066.0, ("low", 1.3): 1260.0, ("low", 1.6): 1550.0,
    ("medium", 1.1): 3731.0, ("medium", 1.3): 4409.0, ("medium", 1.6): 5426.0,
    ("high", 1.1): 6395.0, ("high", 1.3): 7558.0, ("high", 1.6): 9302.0,
}


def _energy_input(kwh: float) -> ActiveEnergyInput:
    return ActiveEnergyInput(period=Duration.from_hours(24),
                             node_energy_kwh={"IRIS": kwh})


def test_bench_table3_active_carbon(benchmark, full_snapshot, results_dir):
    """Regenerate Table 3 from the paper's energy and from the simulation."""

    paper_energy = _energy_input(PAPER_IMPLIED_ENERGY_KWH)
    simulated_energy = full_snapshot.active_energy_input()
    grid = ActiveScenarioGrid()
    # Include the 1.6 value implied by the printed table alongside the
    # text's 1.1/1.3/1.5, so every printed cell is regenerated.
    printed_grid = ActiveScenarioGrid(
        pues={ScenarioLevel.LOW: 1.1, ScenarioLevel.MEDIUM: 1.3,
              ScenarioLevel.HIGH: PAPER_TABLE3_IMPLIED_HIGH_PUE}
    )

    def evaluate_grids():
        return (
            printed_grid.table3_rows(paper_energy),
            grid.table3_rows(simulated_energy),
        )

    paper_rows, simulated_rows = benchmark(evaluate_grids)

    for row in paper_rows:
        key = (row["intensity_level"], row["pue"])
        row["paper_kg"] = (
            PAPER_TABLE3_IT_ONLY[row["intensity_level"]] if row["pue"] is None
            else PAPER_TABLE3_WITH_FACILITIES.get(key)
        )

    print()
    print(format_table(
        paper_rows,
        columns=["intensity_level", "intensity_g_per_kwh", "pue", "carbon_kg", "paper_kg"],
        title="Table 3 - Active carbon estimates (paper's implied 19,380 kWh)",
    ))
    print()
    print(format_table(
        simulated_rows,
        columns=["intensity_level", "intensity_g_per_kwh", "pue", "carbon_kg"],
        title="Table 3 - Active carbon estimates (simulated campaign energy)",
    ))
    write_rows_csv(results_dir / "table3_active_carbon_paper_energy.csv", paper_rows)
    write_rows_csv(results_dir / "table3_active_carbon_simulated.csv", simulated_rows)

    # Every printed cell is reproduced to within rounding.
    for row in paper_rows:
        if row["paper_kg"] is None:
            continue
        assert row["carbon_kg"] == pytest.approx(row["paper_kg"], rel=0.002), row

    # The simulated campaign gives the same shape: the ratio between the
    # most and least carbon-intensive corners matches the paper's ~8.7x.
    low, high = grid.range_kg(simulated_energy)
    assert high / low == pytest.approx(9302.0 / 1066.0, rel=0.12)
    # And the absolute numbers are close because the measured energy is.
    assert low == pytest.approx(1066.0, rel=0.12)
    assert high == pytest.approx(9302.0 * (1.5 / 1.6), rel=0.12)
