"""Bench: Table 2 — active energy measured for the snapshot period.

Runs the full-scale simulated measurement campaign (2,462 nodes across six
sites, four instrument classes, 24 hours) and compares the per-site,
per-method energies against the paper's Table 2.

Expected shape (not exact numbers — the workload is synthetic):

* per-site widest-scope energy within a few percent of the paper;
* the total close to the paper's 18,760 kWh;
* the scope ordering Turbostat < IPMI < PDU <= Facility wherever the paper
  reports those methods.
"""

from __future__ import annotations

import pytest

from repro.inventory.iris import PAPER_TABLE2_ENERGY_KWH, PAPER_TABLE2_TOTAL_KWH
from repro.io.csvio import write_rows_csv
from repro.power.reconciliation import METHOD_SCOPE_ORDER
from repro.reporting.tables import format_table
from repro.snapshot.config import build_iris_snapshot_config
from repro.snapshot.experiment import SnapshotExperiment


def test_bench_table2_energy(benchmark, full_snapshot, results_dir):
    """Regenerate Table 2 with the full-scale simulated campaign."""

    def run_snapshot():
        # A reduced-scale re-run is what gets timed (the full-scale result is
        # computed once in the session fixture and used for the assertions).
        config = build_iris_snapshot_config(node_scale=0.1)
        return SnapshotExperiment(config).run()

    benchmark.pedantic(run_snapshot, rounds=1, iterations=1)

    snapshot = full_snapshot
    rows = snapshot.table2_rows()
    for row in rows:
        row["paper_best_kwh"] = max(
            value for value in PAPER_TABLE2_ENERGY_KWH[row["site"]].values()
            if value is not None
        )

    print()
    print(format_table(
        rows,
        columns=["site", "facility", "pdu", "ipmi", "turbostat", "nodes", "paper_best_kwh"],
        title="Table 2 - Active energy measured for the snapshot period (kWh)",
    ))
    print(f"\nSimulated total: {snapshot.total_best_estimate_kwh:,.0f} kWh "
          f"(paper: {PAPER_TABLE2_TOTAL_KWH:,.0f} kWh)")
    write_rows_csv(results_dir / "table2_energy.csv", rows)

    # Per-site widest-scope energy within 10% of the paper.
    for result in snapshot.site_results:
        paper_best = max(v for v in PAPER_TABLE2_ENERGY_KWH[result.site].values() if v is not None)
        assert result.best_estimate_kwh == pytest.approx(paper_best, rel=0.10)

    # Total within 5% of 18,760 kWh.
    assert snapshot.total_best_estimate_kwh == pytest.approx(PAPER_TABLE2_TOTAL_KWH, rel=0.05)

    # Scope ordering holds at every site.
    for result in snapshot.site_results:
        energies = result.energy_report.energy_by_method()
        present = [m for m in METHOD_SCOPE_ORDER if energies.get(m) is not None]
        for narrow, wide in zip(present, present[1:]):
            assert energies[narrow] <= energies[wide] * 1.02

    # QMUL reproduces the paper's observation that in-band (Turbostat) and
    # partially-scoped (IPMI) methods under-report relative to the PDU.
    qmul = snapshot.site_result("QMUL").energy_report.energy_by_method()
    assert qmul["turbostat"] < qmul["ipmi"] < qmul["pdu"]
