"""Bench: the out-of-core sharded fleet substrate vs the dense engine.

Two acceptance bars:

* **Fidelity** — at ``node_scale=1.0`` (the full 2,462-node IRIS fleet)
  the sharded engine must agree with the dense columnar engine to ≤1e-9
  relative on every Table 2 energy and on the facility power series.  The
  engines share the scheduler and the affine power model; they differ
  only in where the utilisation matrix lives and in floating-point
  summation order.

* **Memory** — the point of the substrate: a fleet whose dense
  utilisation matrix does not fit in RAM must still be assessable.  A
  subprocess capped with ``RLIMIT_AS`` proves it both ways: the dense
  builder dies of :class:`MemoryError` under the cap, while the sharded
  builder + streaming reductions complete under the *same* cap on the
  same synthetic fleet (32,768 nodes × 48 h at 60 s ≈ 755 MB dense,
  capped at 512 MB).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.io.jsonio import write_json
from repro.snapshot.config import build_iris_snapshot_config
from repro.snapshot.experiment import SnapshotExperiment, SnapshotResult

EQUIVALENCE_RTOL = 1e-9

#: The RLIMIT_AS cap, and the synthetic fleet sized to overflow it
#: densely (32768 × 2880 × 8 bytes ≈ 755 MB) while a single 2048-node
#: shard (≈ 47 MB) streams comfortably within it.
MEMORY_CAP_BYTES = 512 * 1024 * 1024
CHILD_NODES = 32768
CHILD_SHARD_NODES = 2048
CHILD_DURATION_S = 48 * 3600.0

#: Exit code the capped child uses to report "dense matrix did not fit".
OOM_EXIT_CODE = 42

_CHILD_SCRIPT = """\
import resource
import sys

mode, cap, shard_dir = sys.argv[1], int(sys.argv[2]), sys.argv[3]
resource.setrlimit(resource.RLIMIT_AS, (cap, cap))

N_NODES = {n_nodes}
DURATION_S = {duration_s}

from repro.workload.jobs import Job
from repro.workload.scheduler import Placement

placements = [
    Placement(
        job=Job(job_id=i, submit_time_s=0.0, cores=16,
                runtime_s=DURATION_S * 0.5),
        node_index=(i * 8) % N_NODES,
        start_time_s=float(i % 7) * 3600.0,
        end_time_s=float(i % 7) * 3600.0 + DURATION_S * 0.5,
    )
    for i in range(4096)
]
node_ids = [f"n{{i:05d}}" for i in range(N_NODES)]
cores = [32] * N_NODES

try:
    if mode == "dense":
        from repro.workload.fleet import FleetUtilization

        trace = FleetUtilization.from_placements(
            placements, node_ids, cores, DURATION_S, step_s=60.0)
        checksum = trace.mean_utilization()
    else:
        from repro.workload.fleet import ShardedFleetUtilization

        store = ShardedFleetUtilization.from_placements(
            placements, node_ids, cores, DURATION_S, shard_dir,
            step_s=60.0, shard_nodes={shard_nodes})
        checksum = store.mean_utilization()
        busy = store.busy_core_seconds(cores)
except MemoryError:
    sys.exit({oom_exit})

peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(f"{{checksum:.15e}} {{peak_kb}}")
""".format(n_nodes=CHILD_NODES, duration_s=CHILD_DURATION_S,
           shard_nodes=CHILD_SHARD_NODES, oom_exit=OOM_EXIT_CODE)


def _assert_equivalent(dense: SnapshotResult, sharded: SnapshotResult):
    for row_dense, row_sharded in zip(dense.table2_rows(),
                                      sharded.table2_rows()):
        assert row_dense["site"] == row_sharded["site"]
        for method, dense_value in row_dense.items():
            if method in ("site", "nodes"):
                continue
            sharded_value = row_sharded[method]
            if dense_value is None:
                assert sharded_value is None
                continue
            assert sharded_value == pytest.approx(
                dense_value, rel=EQUIVALENCE_RTOL, abs=1e-9), (
                f"{row_dense['site']}/{method}: "
                f"{sharded_value} != {dense_value}")
    np.testing.assert_allclose(sharded.facility_power_series().values,
                               dense.facility_power_series().values,
                               rtol=EQUIVALENCE_RTOL, atol=1e-6)


def test_bench_sharded_engine_full_scale_equivalence(results_dir,
                                                     full_snapshot,
                                                     tmp_path):
    """Full IRIS fleet: sharded == dense on every reported figure."""
    config = build_iris_snapshot_config()
    sharded = SnapshotExperiment(config, engine="sharded",
                                 shard_dir=tmp_path,
                                 shard_key="bench-full-scale").run()
    _assert_equivalent(full_snapshot, sharded)
    assert sharded.total_nodes == 2462

    shard_bytes = sum(
        path.stat().st_size
        for site_dir in tmp_path.iterdir()
        for path in site_dir.iterdir())
    write_json(results_dir / "bench_sharded_fleet.json", {
        "total_nodes": sharded.total_nodes,
        "total_best_estimate_kwh": sharded.total_best_estimate_kwh,
        "shard_store_bytes": shard_bytes,
        "equivalence_rtol": EQUIVALENCE_RTOL,
    })
    print(f"\nsharded engine at full scale: {sharded.total_nodes} nodes, "
          f"{shard_bytes / 1e6:.1f} MB of shards, equivalent to dense "
          f"within {EQUIVALENCE_RTOL:g}")


@pytest.mark.skipif(sys.platform != "linux",
                    reason="RLIMIT_AS semantics are only dependable on Linux")
def test_bench_sharded_engine_bounded_memory(results_dir, tmp_path):
    """The dense path dies under the RSS cap; the sharded path completes."""
    script = tmp_path / "capped_child.py"
    script.write_text(_CHILD_SCRIPT)
    env = os.environ.copy()
    repo_src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")

    def run_child(mode):
        shard_dir = tmp_path / f"shards-{mode}"
        return subprocess.run(
            [sys.executable, str(script), mode, str(MEMORY_CAP_BYTES),
             str(shard_dir)],
            env=env, capture_output=True, text=True, timeout=600)

    dense = run_child("dense")
    assert dense.returncode == OOM_EXIT_CODE, (
        f"dense build of a {CHILD_NODES}-node fleet was expected to "
        f"exceed the {MEMORY_CAP_BYTES >> 20} MiB cap but exited "
        f"{dense.returncode}: {dense.stderr[-500:]}")

    sharded = run_child("sharded")
    assert sharded.returncode == 0, (
        f"sharded build failed under the {MEMORY_CAP_BYTES >> 20} MiB "
        f"cap: {sharded.stderr[-500:]}")
    checksum, peak_kb = sharded.stdout.split()
    peak_bytes = int(peak_kb) * 1024
    assert float(checksum) > 0.0
    assert peak_bytes < MEMORY_CAP_BYTES

    dense_bytes = CHILD_NODES * int(CHILD_DURATION_S / 60.0) * 8
    write_json(results_dir / "bench_sharded_memory.json", {
        "nodes": CHILD_NODES,
        "shard_nodes": CHILD_SHARD_NODES,
        "dense_matrix_bytes": dense_bytes,
        "cap_bytes": MEMORY_CAP_BYTES,
        "sharded_peak_rss_bytes": peak_bytes,
        "dense_exceeded_cap": True,
    })
    print(f"\nbounded-memory bench: dense needs {dense_bytes / 1e6:.0f} MB "
          f"(over the {MEMORY_CAP_BYTES / 1e6:.0f} MB cap, exit "
          f"{OOM_EXIT_CODE}); sharded peaked at {peak_bytes / 1e6:.0f} MB")


def test_sharded_engine_smoke_tiny_scale(tmp_path):
    """CI smoke: sharded and dense agree end to end at a tiny fleet scale."""
    config = build_iris_snapshot_config(node_scale=0.02)
    dense = SnapshotExperiment(config).run()
    sharded = SnapshotExperiment(config, engine="sharded",
                                 shard_nodes=8, shard_dir=tmp_path,
                                 shard_key="smoke").run()
    _assert_equivalent(dense, sharded)
    assert sharded.total_best_estimate_kwh > 0
