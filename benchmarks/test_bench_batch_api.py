"""Bench: the batch scenario engine vs naive loop-of-experiments.

The acceptance bar for the unified API: a 12-scenario sweep (intensity x
PUE x lifetime) over shared cached substrates must be demonstrably faster
than 12 independent ``SnapshotExperiment`` runs, because the expensive
simulation happens once instead of 12 times.  Run at 5% fleet scale so the
naive side stays affordable; the relative speedup only grows with scale.
"""

from __future__ import annotations

import time

from repro.api import BatchAssessmentRunner, SubstrateCache, default_spec
from repro.io.jsonio import write_json
from repro.snapshot.config import build_iris_snapshot_config
from repro.snapshot.experiment import SnapshotExperiment

SCALE = 0.05
INTENSITIES = (50.0, 175.0, 300.0)
PUES = (1.1, 1.3)
LIFETIMES = (3.0, 5.0)


def _naive_scenarios() -> list:
    """One full SnapshotExperiment run per scenario — the pre-api pattern."""
    totals = []
    for intensity in INTENSITIES:
        for pue in PUES:
            for lifetime in LIFETIMES:
                config = build_iris_snapshot_config(node_scale=SCALE)
                snapshot = SnapshotExperiment(config).run()
                result = snapshot.evaluate_model(
                    carbon_intensity_g_per_kwh=intensity, pue=pue,
                    lifetime_years=lifetime)
                totals.append(result.total_kg)
    return totals


def _batched_scenarios() -> tuple:
    cache = SubstrateCache()
    runner = BatchAssessmentRunner(default_spec(node_scale=SCALE), substrates=cache)
    batch = runner.sweep(intensity=INTENSITIES, pue=PUES, lifetime=LIFETIMES)
    return batch, cache


def test_bench_batch_vs_naive(results_dir):
    start = time.perf_counter()
    naive_totals = _naive_scenarios()
    naive_s = time.perf_counter() - start

    start = time.perf_counter()
    batch, cache = _batched_scenarios()
    batch_s = time.perf_counter() - start

    assert len(naive_totals) == len(batch) == 12
    # Same physics: scenario for scenario, the answers agree exactly
    # (sweep order is intensity, then pue, then lifetime on both sides).
    assert batch.totals_kg == naive_totals
    # The primary assertion is structural, not wall-clock: one simulation
    # backed all twelve scenarios while the naive loop ran twelve.
    assert cache.snapshot_runs == 1
    # Wall clock only gets a conservative floor (typically ~5x is measured;
    # asserting anywhere near that is flaky on loaded CI machines).
    speedup = naive_s / batch_s if batch_s > 0 else float("inf")
    assert speedup >= 1.5, (
        f"batch sweep ({batch_s:.2f}s) not meaningfully faster than the "
        f"naive loop ({naive_s:.2f}s); speedup {speedup:.2f}x < 1.5x floor")
    write_json(results_dir / "bench_batch_api.json", {
        "scenarios": len(batch),
        "node_scale": SCALE,
        "naive_seconds": naive_s,
        "batch_seconds": batch_s,
        "speedup": speedup,
        "snapshot_runs_batch": cache.snapshot_runs,
        "snapshot_runs_naive": len(naive_totals),
    })
    print(f"\n12-scenario sweep: naive {naive_s:.2f}s, "
          f"batched {batch_s:.2f}s ({speedup:.1f}x)")


def test_bench_batch_sweep_timing(benchmark):
    """Steady-state sweep cost once the substrate is cached."""
    cache = SubstrateCache()
    runner = BatchAssessmentRunner(default_spec(node_scale=SCALE), substrates=cache)
    runner.sweep(intensity=[175.0])  # warm the cache

    def sweep():
        return runner.sweep(intensity=INTENSITIES, pue=PUES, lifetime=LIFETIMES)

    batch = benchmark(sweep)
    assert len(batch) == 12
    assert cache.snapshot_runs == 1
