"""Bench: the vectorized trace integration vs the naive per-sample loop.

The acceptance bar for the time-resolved engine, from two sides:

* **speed** — integrating a 1-year hourly trace (8 760 intervals) with the
  vectorized hot path must be at least 5x faster than the per-sample Python
  loop it replaced (in practice it is orders of magnitude faster);
* **correctness** — the two paths must agree to machine precision, and on a
  constant-intensity trace the temporal engine's cumulative emissions must
  agree with the snapshot pipeline's window-average treatment within 1e-6
  relative tolerance.
"""

from __future__ import annotations

import time

import numpy as np

from repro.api import Assessment, SubstrateCache, TemporalAssessment, default_spec
from repro.grid.synthetic import SyntheticGridModel
from repro.io.jsonio import write_json
from repro.temporal.integrate import (
    integrate_power_intensity,
    integrate_power_intensity_naive,
)
from repro.timeseries.series import TimeSeries

#: One year of hourly intervals — the resolution the acceptance bar names.
N_INTERVALS = 8760
STEP_S = 3600.0

#: Required speedup of the vectorized path over the naive loop.
REQUIRED_SPEEDUP = 5.0


def _year_traces() -> tuple:
    """A year-long hourly power trace and intensity trace (deterministic)."""
    rng = np.random.default_rng(2022)
    power = TimeSeries(0.0, STEP_S,
                       40_000.0 + 15_000.0 * rng.random(N_INTERVALS))
    intensity = SyntheticGridModel().generate_intensity(
        days=N_INTERVALS * STEP_S / 86400.0, step_s=STEP_S).series
    assert len(intensity) == N_INTERVALS
    return power, intensity


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_vectorized_integration_speedup(results_dir):
    power, intensity = _year_traces()

    naive_s = _best_of(
        lambda: integrate_power_intensity_naive(power, intensity, pue=1.3),
        repeats=3)
    vectorized_s = _best_of(
        lambda: integrate_power_intensity(power, intensity, pue=1.3),
        repeats=20)

    speedup = naive_s / vectorized_s
    write_json(results_dir / "bench_temporal_integration.json", {
        "intervals": N_INTERVALS,
        "naive_s": naive_s,
        "vectorized_s": vectorized_s,
        "speedup": speedup,
    })
    print(f"\n1-year hourly integration: naive {naive_s * 1e3:.2f} ms, "
          f"vectorized {vectorized_s * 1e3:.3f} ms, speedup {speedup:.0f}x")

    # Same physics before the speed claim: both paths agree everywhere.
    fast = integrate_power_intensity(power, intensity, pue=1.3)
    slow = integrate_power_intensity_naive(power, intensity, pue=1.3)
    np.testing.assert_allclose(fast.carbon_kg, slow.carbon_kg, rtol=1e-12)
    np.testing.assert_allclose(fast.cumulative_carbon_kg,
                               slow.cumulative_carbon_kg, rtol=1e-12)

    assert speedup >= REQUIRED_SPEEDUP, (
        f"vectorized integration only {speedup:.1f}x faster than the naive "
        f"loop at {N_INTERVALS} intervals; required >= {REQUIRED_SPEEDUP}x")


def test_bench_temporal_agrees_with_snapshot_window_average():
    """Constant intensity: temporal cumulative == snapshot window average."""
    cache = SubstrateCache()
    spec = default_spec(node_scale=0.05, campaign_seed=7)  # fixed 175 g/kWh
    temporal = TemporalAssessment.from_spec(spec, substrates=cache).run()
    static = Assessment.from_spec(spec, substrates=cache).run()

    relative = abs(temporal.active_kg - static.active_kg) / static.active_kg
    print(f"\nconstant-intensity agreement: temporal {temporal.active_kg:.9f} kg, "
          f"window-average {static.active_kg:.9f} kg, rel diff {relative:.2e}")
    assert relative <= 1e-6
    # The cumulative curve ends at the total (up to summation order).
    assert np.isclose(temporal.profile.cumulative_carbon_kg[-1],
                      temporal.active_kg, rtol=1e-12)
