"""Ablation benches for the design choices called out in DESIGN.md.

Four ablations, each isolating one modelling decision:

1. **Measurement scope** — how much energy each method (Turbostat, IPMI,
   PDU, facility) attributes to the same site, and the correction factors
   an operator would need to reconcile them (the paper's Table 2 discussion).
2. **Amortisation policy** — linear vs utilisation-weighted vs per-core-hour
   attribution of embodied carbon to the snapshot.
3. **Estimate-based vs measured energy** — the TDP-proxy, CCF-style and
   Boavizta-style estimators against the simulated measurement campaign.
4. **Carbon-intensity treatment** — period-average conversion vs
   time-resolved integration against the half-hourly intensity series.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.boavizta_style import BoaviztaStyleEstimator
from repro.baselines.ccf_style import CCFStyleEstimator
from repro.baselines.tdp_proxy import TDPProxyEstimator
from repro.core.embodied import (
    CoreHoursAmortization,
    EmbodiedCarbonCalculator,
    LinearAmortization,
    UtilizationWeightedAmortization,
)
from repro.grid.synthetic import uk_november_2022_intensity
from repro.inventory.catalog import default_catalog
from repro.inventory.node import NodeInstance
from repro.io.csvio import write_rows_csv
from repro.power.reconciliation import best_estimate_kwh, compare_methods, ratio_table
from repro.reporting.tables import format_table
from repro.timeseries.series import TimeSeries
from repro.units.quantities import CarbonIntensity, Duration, Energy


def test_bench_ablation_measurement_scope(benchmark, full_snapshot, results_dir):
    """Ablation 1: what each measurement method reports for the same sites."""

    def analyse():
        per_site = {
            result.site: result.energy_report.energy_by_method()
            for result in full_snapshot.site_results
        }
        ratios = ratio_table(per_site, reference_method="facility")
        comparisons = {
            site: compare_methods(readings) for site, readings in per_site.items()
        }
        return per_site, ratios, comparisons

    per_site, ratios, comparisons = benchmark(analyse)

    rows = []
    for site, readings in per_site.items():
        best = best_estimate_kwh(readings)
        for method, value in readings.items():
            if value is None:
                continue
            rows.append({
                "site": site,
                "method": method,
                "energy_kwh": value,
                "fraction_of_best": value / best,
            })
    print()
    print(format_table(rows, title="Ablation 1 - measurement scope",
                       float_format=",.3f"))
    print()
    print(format_table(
        [{"method": method, "mean_ratio_to_facility": ratio}
         for method, ratio in sorted(ratios.items())],
        title="Scope correction factors (method / facility)", float_format=",.3f",
    ))
    write_rows_csv(results_dir / "ablation_measurement_scope.csv", rows)

    # Narrow methods systematically under-report: the correction factors are
    # below 1, and Turbostat misses the most.
    assert ratios["ipmi"] < 1.0
    assert ratios["turbostat"] < ratios["ipmi"]
    # QMUL shows the graded pattern the paper describes.
    qmul = {c.narrow_method: c.shortfall_fraction for c in comparisons["QMUL"]}
    assert qmul["turbostat"] > 0.02
    assert 0.0 < qmul["ipmi"] < 0.15


def test_bench_ablation_amortization_policy(benchmark, full_snapshot, results_dir):
    """Ablation 2: how the amortisation policy shifts the embodied share."""

    period = Duration.from_hours(24)
    assets = full_snapshot.embodied_assets()

    def evaluate_policies():
        out = {}
        for policy in (LinearAmortization(), UtilizationWeightedAmortization(),
                       CoreHoursAmortization()):
            result = EmbodiedCarbonCalculator(policy).evaluate(list(assets), period)
            out[policy.name] = result.total_kg
        return out

    totals = benchmark(evaluate_policies)

    rows = [{"policy": name, "snapshot_embodied_kg": value} for name, value in totals.items()]
    print()
    print(format_table(rows, title="Ablation 2 - amortisation policy", float_format=",.1f"))
    write_rows_csv(results_dir / "ablation_amortization.csv", rows)

    # All policies charge a positive, bounded share of the installed carbon.
    installed = sum(asset.embodied_kgco2 for asset in assets)
    for value in totals.values():
        assert 0.0 < value < installed
    # The utilisation-weighted policy differs from linear because the
    # snapshot utilisation differs from the assumed lifetime average.
    assert totals["utilization-weighted"] != pytest.approx(totals["linear"], rel=1e-3)
    # Policies that lack their extra inputs collapse to linear.
    assert totals["core-hours"] == pytest.approx(totals["linear"], rel=1e-9)


def test_bench_ablation_estimate_vs_measured(benchmark, full_snapshot, results_dir):
    """Ablation 3: estimate-based accounting vs the measured campaign."""

    catalog = default_catalog()
    intensity = CarbonIntensity(175.0)
    hours = 24.0
    # Rebuild the measured fleet as inventory instances.
    fleet = []
    for result in full_snapshot.site_results:
        for node_id, model in result.node_specs.items():
            fleet.append(NodeInstance(node_id=node_id, spec=catalog.node(model)))
    measured_kwh = full_snapshot.total_best_estimate_kwh

    def evaluate_estimators():
        tdp = TDPProxyEstimator().estimate_energy_kwh(fleet, hours)
        ccf = CCFStyleEstimator(pue=1.0).usage_energy_kwh(fleet, hours)
        boavizta = BoaviztaStyleEstimator().fleet_total_kg(
            [node.spec for node in fleet], hours, intensity
        )
        boavizta_kwh = boavizta["use_kg"] * 1000.0 / intensity.g_per_kwh
        return {"tdp_proxy": tdp, "ccf_style": ccf, "boavizta_style": boavizta_kwh}

    estimates = benchmark(evaluate_estimators)

    rows = [{"approach": "measured campaign", "energy_kwh": measured_kwh,
             "error_vs_measured": 0.0}]
    for name, value in estimates.items():
        rows.append({"approach": name, "energy_kwh": value,
                     "error_vs_measured": (value - measured_kwh) / measured_kwh})
    print()
    print(format_table(rows, title="Ablation 3 - estimate-based vs measured energy",
                       float_format=",.3f"))
    write_rows_csv(results_dir / "ablation_estimate_vs_measured.csv", rows)

    # The estimators land in the right order of magnitude but miss by tens of
    # percent — the paper's argument for actually measuring.
    for name, value in estimates.items():
        error = abs(value - measured_kwh) / measured_kwh
        assert 0.02 < error < 0.8, (name, error)


def test_bench_ablation_intensity_treatment(benchmark, full_snapshot, results_dir):
    """Ablation 4: period-average vs time-resolved carbon accounting."""

    november = uk_november_2022_intensity()
    # First 24 hours of the month, on the half-hourly grid.
    day_intensity = november.slice_window(0.0, 24 * 3600.0)
    site_power = {
        result.site: result.energy_report.true_it_energy_kwh
        for result in full_snapshot.site_results
    }
    total_kwh = sum(site_power.values())
    # Build the snapshot's half-hourly energy profile from the QMUL-shaped
    # utilisation (approximately flat), plus a deliberately day-shifted
    # profile to show the effect of load timing.
    n = len(day_intensity.series)
    flat_profile = TimeSeries.constant(0.0, 1800.0, total_kwh / n, n)
    shape = 1.0 + 0.5 * np.sin(np.linspace(0, 2 * np.pi, n))
    shaped = shape / shape.sum() * total_kwh
    shaped_profile = TimeSeries(0.0, 1800.0, shaped)

    def evaluate_treatments():
        average = day_intensity.carbon_for_energy(Energy.from_kwh(total_kwh)).kg
        resolved_flat = day_intensity.carbon_for_energy_profile(flat_profile).kg
        resolved_shaped = day_intensity.carbon_for_energy_profile(shaped_profile).kg
        return average, resolved_flat, resolved_shaped

    average, resolved_flat, resolved_shaped = benchmark(evaluate_treatments)

    rows = [
        {"treatment": "period-average intensity", "carbon_kg": average},
        {"treatment": "time-resolved, flat load", "carbon_kg": resolved_flat},
        {"treatment": "time-resolved, day-shaped load", "carbon_kg": resolved_shaped},
    ]
    print()
    print(format_table(rows, title="Ablation 4 - carbon-intensity treatment",
                       float_format=",.1f"))
    write_rows_csv(results_dir / "ablation_intensity_treatment.csv", rows)

    # A flat load makes the two treatments agree exactly; a shaped load
    # shifts the answer by a few percent — the value of half-hourly data.
    assert resolved_flat == pytest.approx(average, rel=1e-9)
    assert resolved_shaped != pytest.approx(average, rel=0.005)
    assert abs(resolved_shaped - average) / average < 0.30
