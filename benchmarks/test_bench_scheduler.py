"""Bench: the indexed scheduler engine vs the retained reference loop.

The acceptance bar for the indexed engine is twofold:

* **Bit identity.**  At two fleet scales (a tenth-scale and the full
  2,462-node IRIS fleet, calibrated per-site targets) the indexed engine
  must produce exactly the reference loop's placement sequence — same
  jobs, same nodes, same start/end instants — plus identical statistics
  and final cluster state.  Not approximately: ``==``.
* **Speed under contention.**  The reference loop's superlinear terms
  (O(N) placement scans, O(Q) queue surgery, O(R log R) reservation
  sorts) only bite when jobs actually queue.  IRIS's calibrated
  utilisation targets (0.02–0.75) produce essentially zero queueing, so
  both engines are bound by shared per-job costs there and the honest
  comparison is a *contended* regime: full-scale sites pushed to a 0.9
  utilisation target, where blocked-head passes dominate the reference
  loop.  There the indexed engine must be at least **5x** faster.

A third measurement records the indexed engine's scaling headroom: a
32,768-node homogeneous cluster, where per-job cost must stay flat in
node count (the reference loop's per-placement cost grows linearly and
is not timed there — it is the regime the index exists to escape).
"""

from __future__ import annotations

import time

import pytest

from repro.io.jsonio import write_json
from repro.snapshot.config import build_iris_snapshot_config
from repro.snapshot.experiment import SnapshotExperiment
from repro.workload.cluster import SimulatedCluster, SimulatedNode
from repro.workload.jobs import JobGenerator, WorkloadProfile
from repro.workload.scheduler import BackfillScheduler

#: The acceptance bar under contention (measured ~30x on a single-core
#: container at a 0.9 utilisation target; the gap widens with queue depth).
MIN_SPEEDUP = 5.0

#: Contended-regime utilisation target (vs IRIS's calibrated 0.02-0.75).
CONTENDED_TARGET = 0.9

#: Contended-regime sites, at full node scale over the paper's 24 h
#: window.  The subset keeps the reference loop's single pass within a
#: CI-friendly half-minute — over all six sites it takes ~3.5 minutes
#: (the STFC sites' many narrow nodes produce the deepest queues), which
#: would dominate the benchmark job for no extra information.
CONTENDED_SITES = ("QMUL", "DUR", "IMP")

#: The 32k-node scaling point: indexed per-job cost must stay flat in N.
SCALING_NODES = (4096, 32768)
SCALING_CORES_PER_NODE = 8

#: Per-job cost at 32k nodes may be at most this multiple of the 4k cost.
MAX_PER_JOB_GROWTH = 2.5

TIMING_REPEATS = 2


def _site_workloads(config, target_utilization=None):
    """One (site, cluster, jobs) triple per site, generated once.

    With ``target_utilization`` set, every site's calibrated target is
    replaced by the contended value; job streams are otherwise exactly
    what :meth:`SnapshotExperiment.run_site` would schedule.
    """
    experiment = SnapshotExperiment(config)
    workloads = []
    for site in config.sites:
        node_ids, specs = experiment._site_specs(site)
        target = experiment._site_target_utilization(site, specs)
        if target_utilization is not None:
            target = target_utilization
        cluster = experiment._build_cluster(node_ids, specs)
        profile = WorkloadProfile(
            target_utilization=min(max(target, 0.01), 1.0),
            cpu_intensity_low=1.0, cpu_intensity_high=1.0)
        generator = JobGenerator(
            profile, cluster.total_cores, seed=site.workload_seed,
            max_cores_per_job=min(node.cores for node in cluster.nodes))
        jobs = generator.generate(config.duration_s,
                                  warmup_s=config.warmup_hours * 3600.0)
        workloads.append((site, cluster, jobs))
    return workloads


def _run_engine(config, workloads, engine):
    """Schedule every site through one engine; returns per-site outcomes."""
    outcomes = []
    for site, cluster, jobs in workloads:
        scheduler = BackfillScheduler(cluster)
        placements, stats = scheduler.run(jobs, config.duration_s,
                                          scheduler_engine=engine)
        outcomes.append((site.site, placements, stats,
                         [node.free_cores for node in cluster.nodes]))
    return outcomes


def _assert_bit_identical(reference, indexed):
    """The tentpole contract: exact equality, site by site."""
    assert len(reference) == len(indexed)
    for ref, idx in zip(reference, indexed):
        assert ref[0] == idx[0]
        assert idx[1] == ref[1], f"{ref[0]}: placement sequences differ"
        assert idx[2].as_dict() == ref[2].as_dict(), (
            f"{ref[0]}: scheduler statistics differ")
        assert idx[3] == ref[3], f"{ref[0]}: final cluster state differs"


def _best_time(fn, repeats: int = TIMING_REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _timed_pass(config, workloads, engine):
    """One timed scheduling pass; the outcomes double as the identity data.

    The reference loop takes tens of seconds over the contended fleet, so
    unlike the cheaper benches this one times a single pass per engine and
    reuses it for the bit-identity assertion instead of re-running.
    """
    start = time.perf_counter()
    outcomes = _run_engine(config, workloads, engine)
    return time.perf_counter() - start, outcomes


@pytest.mark.parametrize("node_scale", [0.1, 1.0])
def test_bench_scheduler_bit_identity_calibrated(node_scale):
    """Identical placements at tenth and full scale, calibrated targets."""
    config = build_iris_snapshot_config(node_scale=node_scale)
    workloads = _site_workloads(config)
    reference = _run_engine(config, workloads, "reference")
    indexed = _run_engine(config, workloads, "indexed")
    _assert_bit_identical(reference, indexed)
    assert sum(len(outcome[1]) for outcome in indexed) > 0


def test_bench_scheduler_speedup_contended(results_dir):
    """Full node scale at a 0.9 utilisation target: >= 5x, bit-identical."""
    config = build_iris_snapshot_config(node_scale=1.0,
                                        sites=CONTENDED_SITES)
    workloads = _site_workloads(config, target_utilization=CONTENDED_TARGET)

    reference_s, reference = _timed_pass(config, workloads, "reference")
    indexed_s, indexed = _timed_pass(config, workloads, "indexed")
    speedup = reference_s / indexed_s if indexed_s > 0 else float("inf")

    _assert_bit_identical(reference, indexed)
    jobs_started = sum(outcome[2].jobs_started for outcome in indexed)
    backfilled = sum(outcome[2].backfilled_jobs for outcome in indexed)
    assert backfilled > 0, "contended regime must exercise backfill"

    # The calibrated (contention-free) regime, recorded for honesty: both
    # engines are bound by shared per-job costs there, so the speedup is
    # modest — the superlinear terms the index removes only show up once
    # jobs queue.
    calibrated = _site_workloads(config)
    calibrated_reference_s, calibrated_ref = _timed_pass(
        config, calibrated, "reference")
    calibrated_indexed_s, calibrated_idx = _timed_pass(
        config, calibrated, "indexed")
    _assert_bit_identical(calibrated_ref, calibrated_idx)

    scaling = _scaling_points()
    write_json(results_dir / "bench_scheduler.json", {
        "contended": {
            "node_scale": 1.0,
            "sites": list(CONTENDED_SITES),
            "duration_hours": config.duration_hours,
            "target_utilization": CONTENDED_TARGET,
            "jobs_started": jobs_started,
            "backfilled_jobs": backfilled,
            "reference_seconds": reference_s,
            "indexed_seconds": indexed_s,
            "speedup": speedup,
        },
        "calibrated": {
            "node_scale": 1.0,
            "sites": list(CONTENDED_SITES),
            "duration_hours": config.duration_hours,
            "reference_seconds": calibrated_reference_s,
            "indexed_seconds": calibrated_indexed_s,
            "speedup": (calibrated_reference_s / calibrated_indexed_s
                        if calibrated_indexed_s > 0 else float("inf")),
        },
        "scaling_indexed": scaling,
    })
    print(f"\nscheduler engines, {'/'.join(CONTENDED_SITES)} at target "
          f"{CONTENDED_TARGET}: reference {reference_s:.3f}s, "
          f"indexed {indexed_s:.3f}s ({speedup:.1f}x); calibrated regime "
          f"{calibrated_reference_s:.3f}s vs {calibrated_indexed_s:.3f}s")
    for point in scaling:
        print(f"indexed scaling: {point['nodes']} nodes, "
              f"{point['jobs_started']} jobs, "
              f"{point['us_per_job']:.1f}us/job")

    assert speedup >= MIN_SPEEDUP, (
        f"indexed engine only {speedup:.2f}x faster than the reference "
        f"loop under contention (bar: {MIN_SPEEDUP}x; reference "
        f"{reference_s:.3f}s, indexed {indexed_s:.3f}s)")

    ratio = scaling[-1]["us_per_job"] / scaling[0]["us_per_job"]
    assert ratio <= MAX_PER_JOB_GROWTH, (
        f"indexed per-job cost grew {ratio:.2f}x from "
        f"{SCALING_NODES[0]} to {SCALING_NODES[-1]} nodes "
        f"(bar: {MAX_PER_JOB_GROWTH}x)")


def _scaling_points():
    """Indexed per-job cost on homogeneous clusters of growing node count."""
    points = []
    for node_count in SCALING_NODES:
        cluster = SimulatedCluster([
            SimulatedNode(index=i, node_id=f"n{i}",
                          cores=SCALING_CORES_PER_NODE,
                          free_cores=SCALING_CORES_PER_NODE)
            for i in range(node_count)
        ])
        profile = WorkloadProfile(target_utilization=0.5,
                                  mean_cores_per_job=6.0,
                                  median_runtime_s=3600.0)
        jobs = JobGenerator(profile, cluster.total_cores, seed=3,
                            max_cores_per_job=SCALING_CORES_PER_NODE
                            ).generate(duration_s=2 * 3600.0)
        scheduler = BackfillScheduler(cluster)
        seconds = _best_time(
            lambda: scheduler.run(jobs, 2 * 3600.0,
                                  scheduler_engine="indexed"))
        _, stats = scheduler.run(jobs, 2 * 3600.0, scheduler_engine="indexed")
        points.append({
            "nodes": node_count,
            "cores_per_node": SCALING_CORES_PER_NODE,
            "jobs_started": stats.jobs_started,
            "indexed_seconds": seconds,
            "us_per_job": 1e6 * seconds / max(stats.jobs_started, 1),
        })
    return points


def test_scheduler_engine_smoke_tiny_scale():
    """CI smoke: end-to-end snapshot equality between the two engines.

    Runs in a couple of seconds; the engines being bit-identical at the
    scheduler layer must propagate to *exactly* equal Table 2 energies.
    """
    config = build_iris_snapshot_config(node_scale=0.02)
    indexed = SnapshotExperiment(config).run()
    reference = SnapshotExperiment(config, scheduler_engine="reference").run()
    assert indexed.table2_rows() == reference.table2_rows()
    assert (indexed.total_best_estimate_kwh
            == reference.total_best_estimate_kwh)
    assert indexed.total_best_estimate_kwh > 0
