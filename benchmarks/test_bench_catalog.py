"""Bench: catalog-served repeats vs fresh simulation.

The acceptance bar for the run catalog as a serving cache: answering a
previously catalogued spec must be an O(1) database read — no snapshot
simulation at all — and far faster than recomputing.  The structural
assertion (``snapshot_runs == 0`` on the warm path) is primary; the
wall-clock ratio gets a conservative floor well under what is typically
measured (hundreds-fold), because CI machines are noisy.
"""

from __future__ import annotations

import time

from repro.api import Assessment, SubstrateCache, default_spec
from repro.catalog import CatalogRecorder, RunCatalog
from repro.io.jsonio import write_json

#: Large enough that a fresh simulation visibly costs something (~0.4s),
#: small enough that the bench stays cheap.
SCALE = 0.1
REPEATS = 5


def test_bench_catalog_served_repeat(results_dir, tmp_path):
    spec = default_spec(node_scale=SCALE)
    with RunCatalog(tmp_path / "runs.db") as catalog:
        start = time.perf_counter()
        live = Assessment.from_spec(
            spec, substrates=SubstrateCache(),
            catalog=CatalogRecorder(catalog)).run()
        fresh_s = time.perf_counter() - start

        warm_substrates = SubstrateCache()
        start = time.perf_counter()
        for _ in range(REPEATS):
            served = Assessment.from_spec(
                spec, substrates=warm_substrates,
                catalog=CatalogRecorder(catalog)).run()
        served_s = (time.perf_counter() - start) / REPEATS

        # Primary, structural: the warm path never touched the simulator,
        # and what it serves is bit-identical to the live run.
        assert warm_substrates.snapshot_runs == 0
        assert served.served_from_catalog
        assert served.total_kg == live.total_kg
        assert catalog.count() == 1

    speedup = fresh_s / served_s if served_s > 0 else float("inf")
    assert speedup >= 20, (
        f"catalog serve ({served_s * 1e3:.1f}ms) not meaningfully faster "
        f"than fresh simulation ({fresh_s * 1e3:.1f}ms); "
        f"speedup {speedup:.0f}x < 20x floor")
    write_json(results_dir / "bench_catalog.json", {
        "node_scale": SCALE,
        "fresh_seconds": fresh_s,
        "served_seconds_mean": served_s,
        "served_repeats": REPEATS,
        "speedup": speedup,
    })
    print(f"\ncatalog: fresh {fresh_s:.3f}s, served {served_s * 1e3:.2f}ms "
          f"({speedup:.0f}x)")


def test_bench_catalog_serve_timing(benchmark, tmp_path):
    """Steady-state cost of one catalogued answer."""
    spec = default_spec(node_scale=SCALE)
    with RunCatalog(tmp_path / "runs.db") as catalog:
        recorder = CatalogRecorder(catalog)
        Assessment.from_spec(spec, catalog=recorder).run()
        substrates = SubstrateCache()

        def serve():
            return Assessment.from_spec(
                spec, substrates=substrates, catalog=recorder).run()

        served = benchmark(serve)
        assert served.served_from_catalog
        assert substrates.snapshot_runs == 0
