"""Bench: Table 1 — the IRIS hardware inventory summary.

Regenerates the per-site hardware summary of Table 1 from the encoded
inventory and from the assembled infrastructure object, and checks that the
two agree with the paper's printed counts.
"""

from __future__ import annotations


from repro.inventory.iris import (
    IRIS_SITE_NODE_COUNTS,
    build_iris_infrastructure,
    iris_inventory_table,
)
from repro.io.csvio import write_rows_csv
from repro.reporting.tables import format_table

#: The counts printed in Table 1 of the paper.
PAPER_TABLE1 = {
    "QMUL": {"cpu_nodes": 118, "storage_nodes": 0},
    "CAM": {"cpu_nodes": 60, "storage_nodes": 0},
    "DUR": {"cpu_nodes": 808, "storage_nodes": 64},
    "STFC SCARF": {"cpu_nodes": 699, "storage_nodes": 0},
    "STFC CLOUD": {"cpu_nodes": 651, "storage_nodes": 105},
    "IMP": {"cpu_nodes": 241, "storage_nodes": 0},
}


def test_bench_table1_inventory(benchmark, results_dir):
    """Regenerate Table 1 and verify every cell against the paper."""

    def build_table():
        rows = iris_inventory_table()
        infrastructure = build_iris_infrastructure(use_measured_counts=False)
        return rows, infrastructure

    rows, infrastructure = benchmark(build_table)

    print()
    print(format_table(
        rows,
        columns=["site", "description", "cpu_nodes", "storage_nodes"],
        title="Table 1 - IRIS hardware included in the project",
        float_format=",.0f",
    ))
    write_rows_csv(results_dir / "table1_inventory.csv", rows)

    by_site = {row["site"]: row for row in rows}
    for site, expected in PAPER_TABLE1.items():
        assert by_site[site]["cpu_nodes"] == expected["cpu_nodes"]
        assert by_site[site]["storage_nodes"] == expected["storage_nodes"]

    # The assembled infrastructure object carries exactly the same counts.
    expected_total = sum(
        counts.get("cpu", 0) + counts.get("storage", 0)
        for counts in IRIS_SITE_NODE_COUNTS.values()
    )
    assert infrastructure.node_count == expected_total
