"""Bench: the serving layer's two no-wasted-work guarantees.

The acceptance bars for ``repro serve`` as a shared front door:

* **coalescing** — 16 concurrent requests that share one physical
  configuration must trigger exactly one snapshot simulation
  (``snapshot_runs == 1``), making the batch far cheaper than 16
  sequential cold-cache runs;
* **read-through** — a spec already in the run catalog is answered with
  zero simulations (``snapshot_runs == 0``), byte-identical to the live
  answer.

As everywhere in this harness, the structural assertions are primary and
the wall-clock ratio gets a conservative floor (CI machines are noisy).
"""

from __future__ import annotations

import asyncio
import json
import time

from repro.api import Assessment, SubstrateCache, default_spec
from repro.io.jsonio import json_default, write_json
from repro.serve import ServeApp, ServeConfig

#: Large enough that a fresh simulation visibly costs something (~0.4s),
#: small enough that the bench stays cheap.
SCALE = 0.1
CONCURRENT_REQUESTS = 16

#: The issue's floor: coalescing must beat sequential cold-cache serving
#: by at least this factor.  One simulation shared 16 ways typically
#: measures far higher; the floor absorbs scheduler noise.
COALESCING_FLOOR = 8.0


def _doc(**overrides):
    doc = {"node_scale": SCALE}
    doc.update(overrides)
    return doc


def test_bench_serve_coalescing(results_dir):
    # Reference cost: one cold-cache simulation through the library path.
    start = time.perf_counter()
    reference = Assessment.from_spec(
        default_spec(node_scale=SCALE), substrates=SubstrateCache()).run()
    cold_s = time.perf_counter() - start

    app = ServeApp(ServeConfig(workers=CONCURRENT_REQUESTS,
                               queue_limit=CONCURRENT_REQUESTS))
    try:
        docs = [_doc(pue=1.1 + 0.05 * i)
                for i in range(CONCURRENT_REQUESTS)]

        async def burst():
            return await asyncio.gather(
                *(app.submit("assess", doc) for doc in docs))

        start = time.perf_counter()
        outcomes = asyncio.run(burst())
        concurrent_s = time.perf_counter() - start

        # Primary, structural: one simulation fed all 16 answers, and
        # every scenario still got its own distinct, correct payload.
        assert app.substrates.snapshot_runs == 1
        totals = [payload["summary"]["total_kg"] for payload, _ in outcomes]
        assert len(set(totals)) == CONCURRENT_REQUESTS
        assert all(source == "live" for _, source in outcomes)
    finally:
        app.close()

    sequential_estimate_s = CONCURRENT_REQUESTS * cold_s
    speedup = (sequential_estimate_s / concurrent_s
               if concurrent_s > 0 else float("inf"))
    assert speedup >= COALESCING_FLOOR, (
        f"{CONCURRENT_REQUESTS} coalesced requests took {concurrent_s:.3f}s "
        f"vs {sequential_estimate_s:.3f}s sequential cold estimate; "
        f"speedup {speedup:.1f}x < {COALESCING_FLOOR}x floor")
    write_json(results_dir / "bench_serve_coalescing.json", {
        "node_scale": SCALE,
        "concurrent_requests": CONCURRENT_REQUESTS,
        "cold_single_seconds": cold_s,
        "concurrent_burst_seconds": concurrent_s,
        "sequential_estimate_seconds": sequential_estimate_s,
        "snapshot_runs": 1,
        "speedup": speedup,
    })
    print(f"\nserve coalescing: {CONCURRENT_REQUESTS} requests in "
          f"{concurrent_s:.3f}s (1 simulation; est. sequential "
          f"{sequential_estimate_s:.2f}s; {speedup:.0f}x), "
          f"reference total {reference.total_kg:,.1f} kg")


def test_bench_serve_catalog_read_through(results_dir, tmp_path):
    encode = lambda payload: json.dumps(  # noqa: E731
        payload, sort_keys=True, default=json_default)

    recording = ServeApp(ServeConfig(workers=2, catalog=tmp_path / "runs.db"))
    try:
        start = time.perf_counter()
        live, live_source = asyncio.run(recording.submit("assess", _doc()))
        live_s = time.perf_counter() - start
        assert live_source == "live"
    finally:
        recording.close()

    # A fresh server process over the same catalog: the repeat spec must
    # be answered without touching the simulator at all.
    warm = ServeApp(ServeConfig(workers=2, catalog=tmp_path / "runs.db"))
    try:
        start = time.perf_counter()
        served, served_source = asyncio.run(warm.submit("assess", _doc()))
        served_s = time.perf_counter() - start

        assert served_source == "catalog"
        assert warm.substrates.snapshot_runs == 0
        assert encode(served) == encode(live)  # bit-identical response body
        stats = warm.stats()
        assert stats["requests"]["served_from_catalog"] == 1
    finally:
        warm.close()

    speedup = live_s / served_s if served_s > 0 else float("inf")
    assert speedup >= 10, (
        f"catalog-served request ({served_s * 1e3:.1f}ms) not meaningfully "
        f"faster than the live one ({live_s * 1e3:.1f}ms); "
        f"speedup {speedup:.0f}x < 10x floor")
    write_json(results_dir / "bench_serve_read_through.json", {
        "node_scale": SCALE,
        "live_seconds": live_s,
        "served_seconds": served_s,
        "snapshot_runs_warm": 0,
        "speedup": speedup,
    })
    print(f"\nserve read-through: live {live_s:.3f}s, served "
          f"{served_s * 1e3:.2f}ms ({speedup:.0f}x)")
